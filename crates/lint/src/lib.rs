//! # rsj-lint — project-specific static checks for the workspace
//!
//! A deliberately simple, dependency-free, line-based scanner over
//! `crates/` that enforces rules clippy cannot express, because they are
//! about *this* project's architecture:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `std-thread` | `std::thread::spawn` in simulated code — workers must be [`rsj-sim`] tasks so virtual time stays deterministic (`crates/sim/src/kernel.rs`, which implements the simulator itself, is exempt) |
//! | `std-sync` | `std::sync::{Mutex, Barrier, Condvar}` — blocking on an OS primitive invisibly to the simulation kernel deadlocks or distorts virtual time; use `parking_lot` for plain data locks and `rsj-sim` primitives for anything that waits |
//! | `wall-clock` | `std::time::Instant` / `SystemTime` anywhere — reading the host clock breaks run-to-run determinism, the property every experiment and test relies on |
//! | `mr-access` | direct `Mr` byte access (`take_data` / `with_data` / `dma_write`) outside `rsj-rdma` — operators must go through the verbs API so the runtime validator sees every access |
//! | `unwrap` | `.unwrap()` (or an `.expect` with a non-descriptive message) in non-test library code — failures in phase code must say what invariant broke |
//! | `hot-alloc` | `vec!` / `Vec::new` inside `crates/joins` functions named `*_kernel`, `histogram*` or `scatter*` — those are the per-partition hot loops; allocate scratch once in the owning `Partitioner`/table and reuse it |
//! | `fabric-panic` | `.unwrap()` / `.expect(` on the fabric's fallible post/poll results (`wait`/`recv`/`admit`/`drain`) in non-test library code — fault-plane errors (DESIGN.md §8) must propagate as `JoinError` so the run aborts cleanly |
//! | `barrier-name` | a raw string literal as the barrier name at a `sync_named` / `try_sync_named` call site outside `crates/cluster` — barrier names are namespaced per query (`(QueryId, name)`, DESIGN.md §9) and must come from the `rsj_cluster::phase` constants so phase attribution stays canonical |
//!
//! Any rule can be waived on a specific line with a justification marker,
//! on the same line or the line directly above:
//!
//! ```text
//! // lint: allow-unwrap(histogram exchange counted exactly m-1 messages)
//! let h = hists.pop().unwrap();
//! ```
//!
//! An empty reason does not count. Run with `cargo run -p rsj-lint`; the
//! binary exits nonzero if any finding survives, so `ci.sh` fails on new
//! violations.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a specific line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`std-thread`, `std-sync`, `wall-clock`,
    /// `mr-access`, `unwrap`, `hot-alloc`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The simulator kernel implements virtual time on top of real OS threads
/// and synchronization, so the thread/sync rules do not apply to it.
const KERNEL: &str = "crates/sim/src/kernel.rs";

/// Minimum length for an `.expect("...")` message to count as descriptive.
const MIN_EXPECT_LEN: usize = 10;

/// Does `line` (or the preceding line) carry a
/// `// lint: allow-<rule>(<reason>)` marker with a non-empty reason?
fn marker_allows(rule: &str, line: &str, prev: Option<&str>) -> bool {
    let needle = format!("lint: allow-{rule}(");
    for candidate in [Some(line), prev].into_iter().flatten() {
        if let Some(pos) = candidate.find(&needle) {
            let rest = &candidate[pos + needle.len()..];
            if let Some(close) = rest.find(')') {
                if !rest[..close].trim().is_empty() {
                    return true;
                }
            }
        }
    }
    false
}

/// The code portion of a line: everything before a `//` comment. Keeps
/// doc comments and rule explanations from tripping the patterns they
/// describe. (String literals containing `//` are rare enough in this
/// workspace that a marker handles them.)
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// `code` with the contents of string and char literals blanked to
/// spaces (quotes kept), so the structural scanners — brace-depth
/// tracking and `fn`-name detection — cannot be derailed by a `{`, `}`,
/// `;` or `fn ` inside `"..."` or `'{'`. Handles escapes (including
/// `'\u{..}'`); raw strings and literals spanning lines are out of scope
/// for this line-based scanner.
fn mask_literals(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut chars = code.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                let mut escaped = false;
                for c in chars.by_ref() {
                    if escaped {
                        escaped = false;
                        out.push(' ');
                    } else if c == '\\' {
                        escaped = true;
                        out.push(' ');
                    } else if c == '"' {
                        out.push('"');
                        break;
                    } else {
                        out.push(' ');
                    }
                }
            }
            '\'' => {
                // Char literal (`'x'`, `'\n'`, `'\u{1F600}'`) vs lifetime
                // (`'a`, `'static`): a literal's second character is either
                // a backslash or is followed directly by the closing quote.
                let mut rest = chars.clone();
                let is_literal = match rest.next() {
                    Some('\\') => true,
                    Some(_) => rest.next() == Some('\''),
                    None => false,
                };
                out.push('\'');
                if is_literal {
                    let mut escaped = false;
                    for c in chars.by_ref() {
                        if escaped {
                            escaped = false;
                            out.push(' ');
                        } else if c == '\\' {
                            escaped = true;
                            out.push(' ');
                        } else if c == '\'' {
                            out.push('\'');
                            break;
                        } else {
                            out.push(' ');
                        }
                    }
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// The name of a function declared on this line (`fn <name>`), if any.
fn declared_fn_name(code: &str) -> Option<&str> {
    let pos = code.find("fn ")?;
    // Reject identifier-suffix matches like `often `.
    if pos > 0
        && code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    let rest = code[pos + 3..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Is this function name one of the designated hot kernels
/// (`*_kernel`, `histogram*`, `scatter*`)?
fn is_hot_kernel_name(name: &str) -> bool {
    name.ends_with("_kernel") || name.starts_with("histogram") || name.starts_with("scatter")
}

/// Extract the first string literal from `rest` (text following
/// `.expect(`), if it closes on the same line.
fn first_string_literal(rest: &str) -> Option<&str> {
    let start = rest.find('"')?;
    let body = &rest[start + 1..];
    let mut end = None;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => {
                end = Some(i);
                break;
            }
            _ => escaped = false,
        }
    }
    Some(&body[..end?])
}

/// Lint one file's contents. `relpath` is the workspace-relative path
/// (forward slashes), which decides rule applicability.
pub fn lint_file(relpath: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if relpath.starts_with("crates/lint/") {
        // The lint's own sources and fixtures would trip every rule.
        return findings;
    }
    let in_rdma = relpath.starts_with("crates/rdma/");
    let in_cluster = relpath.starts_with("crates/cluster/");
    let is_kernel = relpath == KERNEL;
    // Integration tests and benches exercise the system from outside; the
    // library-code rules (unwrap, mr-access, std-sync) do not apply, but
    // determinism rules (wall-clock, std-thread) still do.
    let is_test_code_file = {
        let p = relpath;
        p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/")
    };

    let in_joins = relpath.starts_with("crates/joins/");

    let mut in_test_module = false;
    let mut prev_line: Option<&str> = None;
    // Brace-depth tracker for the `hot-alloc` rule: inside a designated
    // hot-kernel function (`*_kernel`/`histogram*`/`scatter*`) until the
    // body's braces re-balance.
    let mut depth: i64 = 0;
    let mut hot_fn: Option<(i64, bool)> = None; // (entry depth, body opened)
    for (idx, line) in content.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim_start().starts_with("#[cfg(test)]") {
            // Everything from the unit-test module on is test code. (The
            // workspace convention puts `mod tests` last in each file.)
            in_test_module = true;
        }
        let code = code_part(line);
        // Structure (brace depth, fn-name detection) is tracked on a
        // literal-masked view, so a `{` inside a string or char literal
        // cannot mis-scope the hot-fn tracker for the rest of the file.
        let masked = mask_literals(code);
        let test_code = in_test_module || is_test_code_file;

        if in_joins && !test_code && hot_fn.is_none() {
            if let Some(name) = declared_fn_name(&masked) {
                if is_hot_kernel_name(name) {
                    hot_fn = Some((depth, false));
                }
            }
        }
        let in_hot_fn =
            hot_fn.is_some_and(|(_, opened)| opened) || (hot_fn.is_some() && masked.contains('{'));
        for c in masked.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some((entry, opened)) = &mut hot_fn {
            if depth > *entry {
                *opened = true;
            } else if *opened || masked.contains(';') {
                // Body closed (or a bodyless signature): leave the fn.
                hot_fn = None;
            }
        }

        let mut check = |rule: &'static str, hit: bool, message: String| {
            if hit && !marker_allows(rule, line, prev_line) {
                findings.push(Finding {
                    file: relpath.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        // Determinism rules: everywhere, including tests.
        check(
            "std-thread",
            !is_kernel && (code.contains("std::thread::spawn") || code.contains("thread::spawn(")),
            "OS thread creation in simulated code; spawn an rsj-sim task instead".to_string(),
        );
        check(
            "wall-clock",
            code.contains("std::time::Instant")
                || code.contains("std::time::SystemTime")
                || code.contains("Instant::now(")
                || code.contains("SystemTime::now("),
            "wall-clock read breaks deterministic simulation; use SimCtx::now()".to_string(),
        );

        // Hot-kernel allocation rule: the partitioning and probe loops
        // run once per tuple per pass; an allocation there is a
        // per-call cost the SWWC design exists to avoid.
        check(
            "hot-alloc",
            in_hot_fn && (code.contains("vec!") || code.contains("Vec::new")),
            "allocation inside a hot kernel; move the buffer into the owning struct \
             (e.g. Partitioner scratch) and reuse it across calls"
                .to_string(),
        );

        // Library-code rules: skip tests and benches.
        if !test_code {
            check(
                "std-sync",
                !is_kernel
                    && [
                        "std::sync::Mutex",
                        "std::sync::Barrier",
                        "std::sync::Condvar",
                    ]
                    .iter()
                    .any(|p| code.contains(p)),
                "OS sync primitive invisible to the simulation kernel; use parking_lot::Mutex \
                 for data, rsj-sim primitives for waiting"
                    .to_string(),
            );
            check(
                "mr-access",
                !in_rdma
                    && [".take_data(", ".with_data(", ".dma_write("]
                        .iter()
                        .any(|p| code.contains(p)),
                "direct Mr byte access outside rsj-rdma bypasses the verbs contract validator"
                    .to_string(),
            );
            check(
                "unwrap",
                code.contains(".unwrap()"),
                "unwrap() in library code; state the broken invariant with expect(), or add a \
                 lint marker with the reason it cannot fail"
                    .to_string(),
            );
            if let Some(pos) = code.find(".expect(") {
                if let Some(msg) = first_string_literal(&code[pos + ".expect(".len()..]) {
                    check(
                        "unwrap",
                        msg.len() < MIN_EXPECT_LEN,
                        format!("non-descriptive expect message {msg:?}; say what invariant broke"),
                    );
                }
            }
            // Fault-plane rule: the fabric's post/poll APIs return typed
            // errors so phase code can abort cleanly (DESIGN.md §8);
            // panicking on them in library code reintroduces the
            // crash-the-whole-simulation failure mode the fault plane
            // exists to remove.
            check(
                "fabric-panic",
                [
                    "wait(ctx).unwrap()",
                    "wait(ctx).expect(",
                    "recv(ctx).unwrap()",
                    "recv(ctx).expect(",
                    "admit(ctx).unwrap()",
                    "admit(ctx).expect(",
                    "drain(ctx).unwrap()",
                    "drain(ctx).expect(",
                ]
                .iter()
                .any(|p| code.contains(p)),
                "panic on a fallible fabric post/poll result in library code; propagate the \
                 error as a JoinError so the run aborts cleanly instead of crashing"
                    .to_string(),
            );
            // Barrier-namespace rule (DESIGN.md §9): barrier names form
            // the per-query namespace `(QueryId, name)` and drive phase
            // attribution in `PhaseTimes::from_events`; phase code
            // outside crates/cluster must name barriers through the
            // `rsj_cluster::phase` constants, never ad-hoc literals.
            check(
                "barrier-name",
                !in_cluster
                    && code
                        .find("sync_named(")
                        .is_some_and(|pos| code[pos..].contains('"')),
                "raw barrier-name string at a sync_named call site; use the rsj_cluster::phase \
                 constants so the (QueryId, phase) namespace stays canonical"
                    .to_string(),
            );
        }
        prev_line = Some(line);
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `<root>/crates`. `root` is the workspace
/// root (the directory holding the workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        findings.extend(lint_file(&rel, &content));
    }
    Ok(findings)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn catches_std_thread_spawn() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let f = lint_file("crates/core/src/driver.rs", src);
        assert_eq!(rules(&f), ["std-thread"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn kernel_is_exempt_from_thread_and_sync_rules() {
        let src = "use std::sync::Mutex;\nstd::thread::spawn(|| {});\n";
        assert!(lint_file("crates/sim/src/kernel.rs", src).is_empty());
        assert_eq!(
            rules(&lint_file("crates/sim/src/lib.rs", src)),
            ["std-sync", "std-thread"]
        );
    }

    #[test]
    fn catches_std_sync_primitives_outside_tests() {
        for ty in ["Mutex", "Barrier", "Condvar"] {
            let src = format!("use std::sync::{ty};\n");
            let f = lint_file("crates/joins/src/lib.rs", &src);
            assert_eq!(rules(&f), ["std-sync"], "{ty}");
        }
        // Non-blocking std::sync items stay allowed.
        let ok = "use std::sync::Arc;\nuse std::sync::atomic::AtomicUsize;\n";
        assert!(lint_file("crates/joins/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn catches_wall_clock_everywhere_even_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        let f = lint_file("crates/model/src/lib.rs", src);
        assert_eq!(rules(&f), ["wall-clock"]);
        let bench = "fn b() { let t0 = Instant::now(); }\n";
        assert_eq!(
            rules(&lint_file("crates/bench/benches/kernels.rs", bench)),
            ["wall-clock"]
        );
        // Duration is not a clock read.
        assert!(lint_file(
            "crates/bench/benches/kernels.rs",
            "use std::time::Duration;\n"
        )
        .is_empty());
    }

    #[test]
    fn catches_mr_byte_access_outside_rdma() {
        let src = "fn f(mr: &Mr) { let _ = mr.take_data(); }\n";
        assert_eq!(
            rules(&lint_file("crates/core/src/phases/local.rs", src)),
            ["mr-access"]
        );
        // Inside rsj-rdma the access is the implementation, not a bypass.
        assert!(lint_file("crates/rdma/src/mr.rs", src).is_empty());
    }

    #[test]
    fn catches_unwrap_and_short_expect_in_library_code() {
        let src = "fn f() {\n    let x = y.unwrap();\n    let z = w.expect(\"oops\");\n}\n";
        let f = lint_file("crates/cluster/src/wire.rs", src);
        assert_eq!(rules(&f), ["unwrap", "unwrap"]);
        assert!(f[1].message.contains("non-descriptive"));
        let ok = "fn f() { let z = w.expect(\"histogram phase incomplete\"); }\n";
        assert!(lint_file("crates/cluster/src/wire.rs", ok).is_empty());
    }

    #[test]
    fn unwrap_is_allowed_in_test_modules_and_test_files() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_file("crates/cluster/src/wire.rs", src).is_empty());
        assert!(lint_file("crates/rdma/tests/validator.rs", "fn t() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn catches_panics_on_fabric_results_in_library_code() {
        // Even a descriptive expect is banned on fabric post/poll
        // results: library code must propagate the typed error.
        let src = "fn f() {\n    let c = nic.recv(ctx).expect(\"peer sent the histogram\");\n}\n";
        assert_eq!(
            rules(&lint_file("crates/core/src/x.rs", src)),
            ["fabric-panic"]
        );
        let src = "fn f() {\n    window.drain(ctx).unwrap();\n}\n";
        // The generic unwrap rule fires too; the fabric rule names the fix.
        assert!(rules(&lint_file("crates/operators/src/x.rs", src)).contains(&"fabric-panic"));
        // Propagation is clean.
        let ok = "fn f() -> Result<(), JoinError> {\n    window.drain(ctx).map_err(fab)?;\n    Ok(())\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", ok).is_empty());
        // Tests stay free to unwrap.
        let test = "fn t() { nic.recv(ctx).unwrap(); }\n";
        assert!(lint_file("crates/rdma/tests/x.rs", test).is_empty());
    }

    #[test]
    fn catches_raw_barrier_name_literals_outside_cluster() {
        // A literal name bypasses the phase-constant namespace.
        let src = "fn f() -> Result<(), JoinError> {\n    rt.try_sync_named(ctx, \"histogram\", mach)?;\n    Ok(())\n}\n";
        let f = lint_file("crates/operators/src/sort_merge.rs", src);
        assert_eq!(rules(&f), ["barrier-name"]);
        assert_eq!(f[0].line, 2);
        // The infallible wrapper is covered by the same pattern.
        let sync = "fn f() {\n    rt.sync_named(ctx, \"drain\", mach);\n}\n";
        assert_eq!(
            rules(&lint_file("crates/core/src/phases/network.rs", sync)),
            ["barrier-name"]
        );
        // Naming the barrier through the phase constants is the fix.
        let ok = "fn f() -> Result<(), JoinError> {\n    rt.try_sync_named(ctx, phase::HISTOGRAM, mach)?;\n    Ok(())\n}\n";
        assert!(lint_file("crates/operators/src/sort_merge.rs", ok).is_empty());
    }

    #[test]
    fn barrier_name_rule_is_scoped_and_waivable() {
        let src = "fn f() {\n    rt.sync_named(ctx, \"alpha\", mach);\n}\n";
        // crates/cluster owns the namespace and its tests name barriers
        // freely to exercise it.
        assert!(lint_file("crates/cluster/src/runtime.rs", src).is_empty());
        // Integration tests outside the crate are exempt like every other
        // library-code rule.
        assert!(lint_file("crates/operators/tests/service.rs", src).is_empty());
        let test_mod = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_file("crates/operators/src/x.rs", &test_mod).is_empty());
        // A waiver with a reason applies.
        let waived = "fn f() {\n    // lint: allow-barrier-name(one-off drain point, not a phase)\n    rt.sync_named(ctx, \"drain\", mach);\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", waived).is_empty());
        // Mentioning sync_named in a comment does not trip the rule.
        let comment = "// call sync_named(ctx, \"name\", mach) with a phase constant\n";
        assert!(lint_file("crates/operators/src/x.rs", comment).is_empty());
    }

    #[test]
    fn marker_with_reason_waives_a_rule() {
        let same_line = "let x = y.unwrap(); // lint: allow-unwrap(checked len above)\n";
        assert!(lint_file("crates/core/src/lib.rs", same_line).is_empty());
        let prev_line = "// lint: allow-unwrap(poll loop guarantees Some)\nlet x = y.unwrap();\n";
        assert!(lint_file("crates/core/src/lib.rs", prev_line).is_empty());
        // An empty reason does not count...
        let empty = "let x = y.unwrap(); // lint: allow-unwrap()\n";
        assert_eq!(
            rules(&lint_file("crates/core/src/lib.rs", empty)),
            ["unwrap"]
        );
        // ...and a marker for one rule does not waive another.
        let wrong = "std::thread::spawn(f); // lint: allow-unwrap(whatever)\n";
        assert_eq!(
            rules(&lint_file("crates/core/src/lib.rs", wrong)),
            ["std-thread"]
        );
    }

    #[test]
    fn hot_alloc_flags_allocation_in_joins_kernels() {
        let src =
            "fn scatter_pass(n: usize) {\n    let buf = Vec::new();\n    let v = vec![0; n];\n}\n";
        let f = lint_file("crates/joins/src/radix.rs", src);
        assert_eq!(rules(&f), ["hot-alloc", "hot-alloc"]);
        assert_eq!((f[0].line, f[1].line), (2, 3));
        // Multi-line signatures still enter the function body.
        let multi = "fn histogram_into(\n    tuples: &[u64],\n) {\n    let h = Vec::new();\n}\n";
        assert_eq!(
            rules(&lint_file("crates/joins/src/radix.rs", multi)),
            ["hot-alloc"]
        );
        // `*_kernel` names count too.
        let kernel = "fn probe_kernel() {\n    let v = vec![1];\n}\n";
        assert_eq!(
            rules(&lint_file("crates/joins/src/hash_table.rs", kernel)),
            ["hot-alloc"]
        );
    }

    #[test]
    fn hot_alloc_is_scoped_to_hot_functions_in_joins() {
        // Allocation outside the hot function is fine.
        let src = "fn scatter_one() {\n    flush();\n}\nfn setup() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", src).is_empty());
        // Same code outside crates/joins is out of scope.
        let hot = "fn histogram() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/core/src/phases/local.rs", hot).is_empty());
        // Test modules are exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn scatter_case() { let v = vec![1]; }\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", test).is_empty());
        // A waiver with a reason applies, same as every other rule.
        let waived = "fn histogram() {\n    // lint: allow-hot-alloc(one-shot wrapper)\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", waived).is_empty());
    }

    #[test]
    fn braces_inside_literals_do_not_confuse_hot_fn_scoping() {
        // An unbalanced `{` in a string inside a hot kernel must not leave
        // the tracker stuck on, flagging allocations in later functions.
        let open = "fn scatter_pass() {\n    let s = \"{\";\n    flush();\n}\n\
                    fn setup() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", open).is_empty());
        // An unbalanced `}` in a char literal must not end the hot fn early.
        let close = "fn histogram() {\n    let c = '}';\n    let v = Vec::new();\n}\n";
        let f = lint_file("crates/joins/src/radix.rs", close);
        assert_eq!(rules(&f), ["hot-alloc"]);
        assert_eq!(f[0].line, 3);
        // `'\u{..}'` escapes contain braces too.
        let esc = "fn histogram() {\n    let c = '\\u{7B}';\n    let v = vec![0];\n}\n";
        assert_eq!(
            rules(&lint_file("crates/joins/src/radix.rs", esc)),
            ["hot-alloc"]
        );
        // Lifetimes are not char literals; the signature still opens a body.
        let lt = "fn scatter_into<'a>(out: &'a mut [u64]) {\n    let v = Vec::new();\n}\n";
        assert_eq!(
            rules(&lint_file("crates/joins/src/radix.rs", lt)),
            ["hot-alloc"]
        );
        // A `fn` keyword inside a string is not a declaration.
        let fake = "fn helper() {\n    let s = \"fn scatter_x() {\";\n}\n\
                    fn other() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", fake).is_empty());
    }

    #[test]
    fn comments_and_doc_text_do_not_trip_code_rules() {
        let src = "//! Never call std::thread::spawn in simulated code.\n\
                   // a worker must not use std::sync::Mutex\n\
                   /// or .unwrap() either\n";
        assert!(lint_file("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lint_ignores_its_own_sources() {
        let src = "std::thread::spawn(|| x.unwrap());\n";
        assert!(lint_file("crates/lint/src/fixtures.rs", src).is_empty());
    }
}
