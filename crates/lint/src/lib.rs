//! # rsj-lint — token-level static analysis for the workspace
//!
//! A dependency-free Rust **token-stream** analyzer over `crates/` that
//! enforces rules clippy cannot express, because they are about *this*
//! project's architecture. Files are lexed (raw strings, nested block
//! comments, char literals and lifetimes handled correctly — see
//! `lexer.rs`), a workspace-wide pass collects cross-file context
//! (hash-typed identifiers, the canonical phase order), then each rule
//! runs over each file's code tokens:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `std-thread` | `std::thread::spawn` in simulated code — workers must be [`rsj-sim`] tasks so virtual time stays deterministic (`crates/sim/src/kernel.rs`, which implements the simulator itself, is exempt) |
//! | `std-sync` | `std::sync::{Mutex, Barrier, Condvar}` — blocking on an OS primitive invisibly to the simulation kernel deadlocks or distorts virtual time; use `parking_lot` for plain data locks and `rsj-sim` primitives for anything that waits |
//! | `wall-clock` | `std::time::Instant` / `SystemTime` anywhere — reading the host clock breaks run-to-run determinism, the property every experiment and test relies on |
//! | `mr-access` | direct `Mr` byte access (`take_data` / `with_data` / `dma_write`) outside `rsj-rdma` — operators must go through the verbs API so the runtime validator sees every access |
//! | `unwrap` | `.unwrap()` (or an `.expect` with a non-descriptive message) in non-test library code — failures in phase code must say what invariant broke |
//! | `hot-alloc` | `vec!` / `Vec::new` inside `crates/joins` functions named `*_kernel`, `histogram*` or `scatter*` — those are the per-partition hot loops; allocate scratch once in the owning `Partitioner`/table and reuse it |
//! | `fabric-panic` | `.unwrap()` / `.expect(` on the fabric's fallible post/poll results (`wait`/`recv`/`admit`/`drain`) in non-test library code — fault-plane errors (DESIGN.md §8) must propagate as `JoinError` so the run aborts cleanly |
//! | `barrier-name` | a raw string literal as the barrier name at a `sync_named` / `try_sync_named` call site outside `crates/cluster` — barrier names are namespaced per query (`(QueryId, name)`, DESIGN.md §9) and must come from the `rsj_cluster::phase` constants so phase attribution stays canonical |
//! | `nondet-iter` | iteration (`iter`/`into_iter`/`keys`/`values`/`drain`/`retain`/…) over a `std` `HashMap`/`HashSet` in result-affecting library code — the per-process random SipHash seed makes the order vary run-to-run, breaking byte-identical replay; use `BTreeMap`/`BTreeSet` or sort before iterating. Order-independent sinks (commutative folds like `.sum()`, collecting back into a map, collect-then-sort) are recognized and not flagged. Identifier typing is cross-file and name-based |
//! | `barrier-protocol` | per operator entry point in `crates/{core,operators}`: a `phase::` barrier reachable on some control-flow paths but not others (a worker that skips it deadlocks every peer parked on the `(QueryId, name)` barrier), a plain early `return` that can skip a later barrier (only `JoinError` propagation may bypass barriers — an abort poisons them), and phase sequences that violate the canonical declaration order of `crates/cluster/src/phase.rs` |
//! | `error-swallow` | `let _ =`, `.ok()`, or a bare statement discard on a fabric/`JoinError` result (`wait`/`recv`/`admit`/`drain`/`try_sync*`) in library code — fault-plane errors must propagate or be matched explicitly |
//!
//! Any rule can be waived on a specific line with a justification marker
//! (in a comment — markers inside string literals do not count), on the
//! same line or the line directly above:
//!
//! ```text
//! // lint: allow-unwrap(histogram exchange counted exactly m-1 messages)
//! let h = hists.pop().unwrap();
//! ```
//!
//! An empty reason does not count. Run with `cargo run -p rsj-lint`; add
//! `--json` for a machine-readable report and
//! `--baseline lint-baseline.json` to exit nonzero only on findings
//! absent from the committed baseline (`--update-baseline` refreshes it
//! after review). See [`report`] for the baseline semantics.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

mod engine;
mod lexer;
pub mod report;
mod rules;

pub use rules::RULES;

/// One rule finding at a specific line. Waived findings are kept (with
/// `waived = true` and the marker's reason) so reports and baselines are
/// auditable; only unwaived findings fail a plain run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Was this finding waived by a `// lint: allow-<rule>(reason)` marker?
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if let Some(reason) = &self.reason {
            write!(f, " (waived: {reason})")?;
        }
        Ok(())
    }
}

/// Lint a set of files together. Each entry is
/// `(workspace-relative path, contents)`; the path decides rule
/// applicability. Cross-file context (hash-typed identifiers for
/// `nondet-iter`, the canonical phase order for `barrier-protocol`) is
/// collected over the whole set, so linting the full workspace is more
/// precise than file-at-a-time. Findings come back sorted by
/// `(file, line, rule)` and include waived ones.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    // The lint's own sources and fixtures would trip every rule.
    let ctxs: Vec<engine::FileCtx<'_>> = files
        .iter()
        .filter(|(rel, _)| !rel.starts_with("crates/lint/"))
        .map(|(rel, content)| engine::FileCtx::new(rel, content))
        .collect();
    let global = engine::Global::collect(&ctxs);
    let mut findings = Vec::new();
    for ctx in &ctxs {
        let mut file_findings = Vec::new();
        rules::check_file(ctx, &global, &mut file_findings);
        engine::apply_waivers(ctx, &mut file_findings);
        findings.extend(file_findings);
    }
    let rule_index = |rule: &str| RULES.iter().position(|r| *r == rule).unwrap_or(RULES.len());
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, rule_index(a.rule)).cmp(&(
            b.file.as_str(),
            b.line,
            rule_index(b.rule),
        ))
    });
    findings
}

/// Lint one file's contents. `relpath` is the workspace-relative path
/// (forward slashes), which decides rule applicability. Cross-file
/// context degrades gracefully: the canonical phase order falls back to
/// the built-in default and only hash identifiers declared in this file
/// are known.
pub fn lint_file(relpath: &str, content: &str) -> Vec<Finding> {
    lint_files(&[(relpath.to_string(), content.to_string())])
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `<root>/crates`. `root` is the workspace
/// root (the directory holding the workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    rs_files(&root.join("crates"), &mut paths)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        files.push((rel, content));
    }
    Ok(lint_files(&files))
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rule names of the unwaived findings, in order.
    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings
            .iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule)
            .collect()
    }

    fn unwaived(findings: Vec<Finding>) -> Vec<Finding> {
        findings.into_iter().filter(|f| !f.waived).collect()
    }

    #[test]
    fn catches_std_thread_spawn() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let f = lint_file("crates/core/src/driver.rs", src);
        assert_eq!(rules_of(&f), ["std-thread"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn kernel_is_exempt_from_thread_and_sync_rules() {
        let src = "use std::sync::Mutex;\nstd::thread::spawn(|| {});\n";
        assert!(lint_file("crates/sim/src/kernel.rs", src).is_empty());
        assert_eq!(
            rules_of(&lint_file("crates/sim/src/lib.rs", src)),
            ["std-sync", "std-thread"]
        );
    }

    #[test]
    fn catches_std_sync_primitives_outside_tests() {
        for ty in ["Mutex", "Barrier", "Condvar"] {
            let src = format!("use std::sync::{ty};\n");
            let f = lint_file("crates/joins/src/lib.rs", &src);
            assert_eq!(rules_of(&f), ["std-sync"], "{ty}");
        }
        // Brace imports are seen too (the line scanner missed these).
        let brace = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(
            rules_of(&lint_file("crates/joins/src/lib.rs", brace)),
            ["std-sync"]
        );
        // Non-blocking std::sync items stay allowed.
        let ok = "use std::sync::Arc;\nuse std::sync::atomic::AtomicUsize;\n";
        assert!(lint_file("crates/joins/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn catches_wall_clock_everywhere_even_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        let f = lint_file("crates/model/src/lib.rs", src);
        assert_eq!(rules_of(&f), ["wall-clock"]);
        let bench = "fn b() { let t0 = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/bench/benches/kernels.rs", bench)),
            ["wall-clock"]
        );
        // Duration is not a clock read.
        assert!(lint_file(
            "crates/bench/benches/kernels.rs",
            "use std::time::Duration;\n"
        )
        .is_empty());
    }

    #[test]
    fn catches_mr_byte_access_outside_rdma() {
        let src = "fn f(mr: &Mr) { let _ = mr.take_data(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/phases/local.rs", src)),
            ["mr-access"]
        );
        // Inside rsj-rdma the access is the implementation, not a bypass.
        assert!(lint_file("crates/rdma/src/mr.rs", src).is_empty());
    }

    #[test]
    fn catches_unwrap_and_short_expect_in_library_code() {
        let src = "fn f() {\n    let x = y.unwrap();\n    let z = w.expect(\"oops\");\n}\n";
        let f = lint_file("crates/cluster/src/wire.rs", src);
        assert_eq!(rules_of(&f), ["unwrap", "unwrap"]);
        assert!(f[1].message.contains("non-descriptive"));
        let ok = "fn f() { let z = w.expect(\"histogram phase incomplete\"); }\n";
        assert!(lint_file("crates/cluster/src/wire.rs", ok).is_empty());
    }

    #[test]
    fn unwrap_is_allowed_in_test_modules_and_test_files() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_file("crates/cluster/src/wire.rs", src).is_empty());
        assert!(lint_file("crates/rdma/tests/validator.rs", "fn t() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn catches_panics_on_fabric_results_in_library_code() {
        // Even a descriptive expect is banned on fabric post/poll
        // results: library code must propagate the typed error.
        let src = "fn f() {\n    let c = nic.recv(ctx).expect(\"peer sent the histogram\");\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/x.rs", src)),
            ["fabric-panic"]
        );
        let src = "fn f() {\n    window.drain(ctx).unwrap();\n}\n";
        // The generic unwrap rule fires too; the fabric rule names the fix.
        assert!(rules_of(&lint_file("crates/operators/src/x.rs", src)).contains(&"fabric-panic"));
        // Propagation is clean.
        let ok = "fn f() -> Result<(), JoinError> {\n    window.drain(ctx).map_err(fab)?;\n    Ok(())\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", ok).is_empty());
        // Tests stay free to unwrap.
        let test = "fn t() { nic.recv(ctx).unwrap(); }\n";
        assert!(lint_file("crates/rdma/tests/x.rs", test).is_empty());
    }

    #[test]
    fn catches_raw_barrier_name_literals_outside_cluster() {
        // A literal name bypasses the phase-constant namespace.
        let src = "fn f() -> Result<(), JoinError> {\n    rt.try_sync_named(ctx, \"histogram\", mach)?;\n    Ok(())\n}\n";
        let f = lint_file("crates/operators/src/sort_merge.rs", src);
        assert_eq!(rules_of(&f), ["barrier-name"]);
        assert_eq!(f[0].line, 2);
        // The infallible wrapper is covered by the same pattern.
        let sync = "fn f() {\n    rt.sync_named(ctx, \"drain\", mach);\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/phases/network.rs", sync)),
            ["barrier-name"]
        );
        // Naming the barrier through the phase constants is the fix.
        let ok = "fn f() -> Result<(), JoinError> {\n    rt.try_sync_named(ctx, phase::HISTOGRAM, mach)?;\n    Ok(())\n}\n";
        assert!(lint_file("crates/operators/src/sort_merge.rs", ok).is_empty());
    }

    #[test]
    fn barrier_name_rule_is_scoped_and_waivable() {
        let src = "fn f() {\n    rt.sync_named(ctx, \"alpha\", mach);\n}\n";
        // crates/cluster owns the namespace and its tests name barriers
        // freely to exercise it.
        assert!(lint_file("crates/cluster/src/runtime.rs", src).is_empty());
        // Integration tests outside the crate are exempt like every other
        // library-code rule.
        assert!(lint_file("crates/operators/tests/service.rs", src).is_empty());
        let test_mod = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_file("crates/operators/src/x.rs", &test_mod).is_empty());
        // A waiver with a reason applies; the finding is kept but waived.
        let waived = "fn f() {\n    // lint: allow-barrier-name(one-off drain point, not a phase)\n    rt.sync_named(ctx, \"drain\", mach);\n}\n";
        let f = lint_file("crates/operators/src/x.rs", waived);
        assert!(rules_of(&f).is_empty());
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
        assert_eq!(
            f[0].reason.as_deref(),
            Some("one-off drain point, not a phase")
        );
        // Mentioning sync_named in a comment does not trip the rule.
        let comment = "// call sync_named(ctx, \"name\", mach) with a phase constant\n";
        assert!(lint_file("crates/operators/src/x.rs", comment).is_empty());
    }

    #[test]
    fn marker_with_reason_waives_a_rule() {
        let same_line = "fn f() { let x = y.unwrap(); } // lint: allow-unwrap(checked len above)\n";
        assert!(unwaived(lint_file("crates/core/src/lib.rs", same_line)).is_empty());
        let prev_line =
            "fn f() {\n    // lint: allow-unwrap(poll loop guarantees Some)\n    let x = y.unwrap();\n}\n";
        assert!(unwaived(lint_file("crates/core/src/lib.rs", prev_line)).is_empty());
        // An empty reason does not count...
        let empty = "fn f() { let x = y.unwrap(); } // lint: allow-unwrap()\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/lib.rs", empty)),
            ["unwrap"]
        );
        // ...and a marker for one rule does not waive another.
        let wrong = "fn f() { std::thread::spawn(g); } // lint: allow-unwrap(whatever)\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/lib.rs", wrong)),
            ["std-thread"]
        );
        // A marker inside a string literal is not a waiver.
        let in_string =
            "fn f() {\n    let s = \"lint: allow-unwrap(not a comment)\";\n    let x = y.unwrap();\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/lib.rs", in_string)),
            ["unwrap"]
        );
    }

    #[test]
    fn hot_alloc_flags_allocation_in_joins_kernels() {
        let src =
            "fn scatter_pass(n: usize) {\n    let buf = Vec::new();\n    let v = vec![0; n];\n}\n";
        let f = lint_file("crates/joins/src/radix.rs", src);
        assert_eq!(rules_of(&f), ["hot-alloc", "hot-alloc"]);
        assert_eq!((f[0].line, f[1].line), (2, 3));
        // Multi-line signatures still enter the function body.
        let multi = "fn histogram_into(\n    tuples: &[u64],\n) {\n    let h = Vec::new();\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/joins/src/radix.rs", multi)),
            ["hot-alloc"]
        );
        // `*_kernel` names count too.
        let kernel = "fn probe_kernel() {\n    let v = vec![1];\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/joins/src/hash_table.rs", kernel)),
            ["hot-alloc"]
        );
    }

    #[test]
    fn hot_alloc_is_scoped_to_hot_functions_in_joins() {
        // Allocation outside the hot function is fine.
        let src = "fn scatter_one() {\n    flush();\n}\nfn setup() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", src).is_empty());
        // Same code outside crates/joins is out of scope.
        let hot = "fn histogram() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/core/src/phases/local.rs", hot).is_empty());
        // Test modules are exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn scatter_case() { let v = vec![1]; }\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", test).is_empty());
        // A waiver with a reason applies, same as every other rule.
        let waived = "fn histogram() {\n    // lint: allow-hot-alloc(one-shot wrapper)\n    let v = Vec::new();\n}\n";
        assert!(unwaived(lint_file("crates/joins/src/radix.rs", waived)).is_empty());
    }

    #[test]
    fn literals_do_not_confuse_structure_or_rules() {
        // An unbalanced `{` in a string inside a hot kernel must not leave
        // the tracker stuck on, flagging allocations in later functions.
        let open = "fn scatter_pass() {\n    let s = \"{\";\n    flush();\n}\n\
                    fn setup() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", open).is_empty());
        // An unbalanced `}` in a char literal must not end the hot fn early.
        let close = "fn histogram() {\n    let c = '}';\n    let v = Vec::new();\n}\n";
        let f = lint_file("crates/joins/src/radix.rs", close);
        assert_eq!(rules_of(&f), ["hot-alloc"]);
        assert_eq!(f[0].line, 3);
        // `'\u{..}'` escapes contain braces too.
        let esc = "fn histogram() {\n    let c = '\\u{7B}';\n    let v = vec![0];\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/joins/src/radix.rs", esc)),
            ["hot-alloc"]
        );
        // Lifetimes are not char literals; the signature still opens a body.
        let lt = "fn scatter_into<'a>(out: &'a mut [u64]) {\n    let v = Vec::new();\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/joins/src/radix.rs", lt)),
            ["hot-alloc"]
        );
        // A `fn` keyword inside a string is not a declaration.
        let fake = "fn helper() {\n    let s = \"fn scatter_x() {\";\n}\n\
                    fn other() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/joins/src/radix.rs", fake).is_empty());
        // Rule patterns inside raw strings do not fire (the line scanner's
        // masking bug): the raw string below contains `.unwrap()` and an
        // unbalanced quote that would derail a line-based masker.
        let raw =
            "fn f() -> String {\n    r#\"x.unwrap() \" std::thread::spawn\"#.to_string()\n}\n";
        assert!(lint_file("crates/core/src/lib.rs", raw).is_empty());
        // Same for multi-line block comments, nested ones included.
        let block = "fn f() {}\n/* x.unwrap()\n   /* std::sync::Mutex */\n   Instant::now() */\nfn g() {}\n";
        assert!(lint_file("crates/core/src/lib.rs", block).is_empty());
    }

    #[test]
    fn comments_and_doc_text_do_not_trip_code_rules() {
        let src = "//! Never call std::thread::spawn in simulated code.\n\
                   // a worker must not use std::sync::Mutex\n\
                   /// or .unwrap() either\n";
        assert!(lint_file("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lint_ignores_its_own_sources() {
        let src = "std::thread::spawn(|| x.unwrap());\n";
        assert!(lint_file("crates/lint/src/fixtures.rs", src).is_empty());
    }

    // ---- nondet-iter ----

    #[test]
    fn nondet_iter_flags_hash_iteration_in_library_code() {
        let src = "fn f() {\n    let mut m: HashMap<u64, u64> = HashMap::new();\n    \
                   for (k, v) in &m {\n        emit(k, v);\n    }\n}\n";
        let f = lint_file("crates/operators/src/x.rs", src);
        assert_eq!(rules_of(&f), ["nondet-iter"]);
        assert_eq!(f[0].line, 3);
        // Draining through an iterator method is the same hazard.
        let drain = "fn f(groups: &mut HashMap<u64, u64>) {\n    \
                     for (k, v) in groups.drain() {\n        emit(k, v);\n    }\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/operators/src/x.rs", drain)),
            ["nondet-iter"]
        );
        // `.keys()` feeding an order-sensitive consumer.
        let keys = "fn f(seen: &HashSet<u64>) {\n    \
                    for k in seen.iter() {\n        emit(*k);\n    }\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/x.rs", keys)),
            ["nondet-iter"]
        );
    }

    #[test]
    fn nondet_iter_skips_ordered_containers_and_order_free_sinks() {
        // BTreeMap iteration is deterministic.
        let btree =
            "fn f(m: &BTreeMap<u64, u64>) {\n    for (k, v) in m.iter() { emit(k, v); }\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", btree).is_empty());
        // Commutative chain-terminal folds are order-independent.
        let sum = "fn f(m: &HashMap<u64, u64>) -> u64 {\n    m.values().sum()\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", sum).is_empty());
        // Collect-then-sort is the sanctioned pattern.
        let sorted = "fn f(m: &HashMap<u64, u64>) {\n    \
                      let mut keys: Vec<u64> = m.keys().copied().collect();\n    \
                      keys.sort_unstable();\n    for k in keys { emit(k); }\n}\n";
        assert!(lint_file("crates/core/src/x.rs", sorted).is_empty());
        // Collecting into another map is insertion, not ordered output.
        let remap = "fn f(m: &HashMap<u64, u64>) -> HashMap<u64, u64> {\n    \
                     m.iter().map(|(k, v)| (*k, v + 1)).collect::<HashMap<u64, u64>>()\n}\n";
        assert!(lint_file("crates/core/src/x.rs", remap).is_empty());
        // Tests and the sim kernel are out of scope.
        let test = "#[cfg(test)]\nmod tests {\n    fn t(m: &HashMap<u64, u64>) { for k in m.keys() { emit(k); } }\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", test).is_empty());
        // A waiver applies like every other rule.
        let waived = "fn f(m: &HashMap<u64, u64>) {\n    \
                      // lint: allow-nondet-iter(order folded into a commutative checksum)\n    \
                      for (k, v) in m.iter() { fold(k, v); }\n}\n";
        assert!(unwaived(lint_file("crates/core/src/x.rs", waived)).is_empty());
    }

    #[test]
    fn nondet_iter_tracks_identifiers_across_files() {
        // The field is declared hash-typed in one file and iterated in
        // another; single-file linting cannot see that, lint_files can.
        let decl = "pub struct Registry {\n    pub slots: HashMap<u32, u64>,\n}\n";
        let user =
            "fn f(r: &Registry) {\n    for v in r.slots.values() {\n        emit(*v);\n    }\n}\n";
        let f = lint_files(&[
            ("crates/rdma/src/registry.rs".to_string(), decl.to_string()),
            ("crates/core/src/user.rs".to_string(), user.to_string()),
        ]);
        assert_eq!(rules_of(&f), ["nondet-iter"]);
        assert_eq!(f[0].file, "crates/core/src/user.rs");
    }

    // ---- barrier-protocol ----

    #[test]
    fn barrier_protocol_flags_conditionally_reached_barriers() {
        let src = "fn worker() -> Result<(), JoinError> {\n    \
                   if is_head {\n        rt.try_sync_named(ctx, phase::HISTOGRAM, m)?;\n    }\n    \
                   rt.try_sync_named(ctx, phase::BUILD_PROBE, m)?;\n    Ok(())\n}\n";
        let f = lint_file("crates/operators/src/x.rs", src);
        assert_eq!(rules_of(&f), ["barrier-protocol"]);
        assert!(f[0].message.contains("HISTOGRAM"));
        assert!(f[0].message.contains("some control-flow paths"));
        // All barriers unconditional: clean.
        let ok = "fn worker() -> Result<(), JoinError> {\n    \
                  rt.try_sync_named(ctx, phase::HISTOGRAM, m)?;\n    \
                  rt.try_sync_named(ctx, phase::BUILD_PROBE, m)?;\n    Ok(())\n}\n";
        assert!(lint_file("crates/operators/src/x.rs", ok).is_empty());
    }

    #[test]
    fn barrier_protocol_flags_early_returns_that_skip_barriers() {
        let src = "fn worker() -> Result<(), JoinError> {\n    \
                   if input.is_empty() {\n        return Ok(());\n    }\n    \
                   rt.try_sync_named(ctx, phase::HISTOGRAM, m)?;\n    Ok(())\n}\n";
        let f = lint_file("crates/core/src/phases/x.rs", src);
        assert_eq!(rules_of(&f), ["barrier-protocol"]);
        assert!(f[0].message.contains("early `return`"));
        // `return Err(...)` aborts the query and poisons its barriers, so
        // skipping the rest is the designed behavior — exempt. Same for
        // `?` propagation (no `return` token at all).
        let err = "fn worker() -> Result<(), JoinError> {\n    \
                   if bad {\n        return Err(JoinError::fabric(q, h, e));\n    }\n    \
                   rt.try_sync_named(ctx, phase::HISTOGRAM, m)?;\n    Ok(())\n}\n";
        assert!(lint_file("crates/core/src/phases/x.rs", err).is_empty());
    }

    #[test]
    fn barrier_protocol_enforces_canonical_phase_order() {
        let src = "fn worker() -> Result<(), JoinError> {\n    \
                   rt.try_sync_named(ctx, phase::BUILD_PROBE, m)?;\n    \
                   rt.try_sync_named(ctx, phase::HISTOGRAM, m)?;\n    Ok(())\n}\n";
        let f = lint_file("crates/operators/src/x.rs", src);
        assert_eq!(rules_of(&f), ["barrier-protocol"]);
        assert!(f[0].message.contains("canonical phase order"));
        // Unknown constants are flagged too.
        let unknown = "fn worker() -> Result<(), JoinError> {\n    \
                       rt.try_sync_named(ctx, phase::SHUFFLE, m)?;\n    Ok(())\n}\n";
        let f = lint_file("crates/operators/src/x.rs", unknown);
        assert_eq!(rules_of(&f), ["barrier-protocol"]);
        assert!(f[0].message.contains("unknown phase constant"));
        // Outside crates/{core,operators} the rule does not apply.
        let elsewhere = "fn worker() -> Result<(), JoinError> {\n    \
                         if x {\n        rt.try_sync_named(ctx, phase::HISTOGRAM, m)?;\n    }\n    Ok(())\n}\n";
        assert!(lint_file("crates/workload/src/x.rs", elsewhere).is_empty());
    }

    #[test]
    fn barrier_protocol_reads_the_canonical_order_from_phase_rs() {
        // With phase.rs in the file set, its declaration order wins over
        // the built-in default.
        let phase_rs = "pub const ALPHA: &str = \"alpha\";\npub const BETA: &str = \"beta\";\n";
        let ok = "fn worker() -> Result<(), JoinError> {\n    \
                  rt.try_sync_named(ctx, phase::ALPHA, m)?;\n    \
                  rt.try_sync_named(ctx, phase::BETA, m)?;\n    Ok(())\n}\n";
        let f = lint_files(&[
            (
                "crates/cluster/src/phase.rs".to_string(),
                phase_rs.to_string(),
            ),
            ("crates/operators/src/x.rs".to_string(), ok.to_string()),
        ]);
        assert!(f.is_empty());
        let bad = "fn worker() -> Result<(), JoinError> {\n    \
                   rt.try_sync_named(ctx, phase::BETA, m)?;\n    \
                   rt.try_sync_named(ctx, phase::ALPHA, m)?;\n    Ok(())\n}\n";
        let f = lint_files(&[
            (
                "crates/cluster/src/phase.rs".to_string(),
                phase_rs.to_string(),
            ),
            ("crates/operators/src/x.rs".to_string(), bad.to_string()),
        ]);
        assert_eq!(rules_of(&f), ["barrier-protocol"]);
    }

    // ---- error-swallow ----

    #[test]
    fn error_swallow_flags_discarded_fabric_results() {
        let let_discard = "fn f() {\n    let _ = window.drain(ctx);\n}\n";
        let f = lint_file("crates/rdma/src/x.rs", let_discard);
        assert_eq!(rules_of(&f), ["error-swallow"]);
        assert_eq!(f[0].line, 2);
        let ok_swallow = "fn f() {\n    nic.recv(ctx).ok();\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/rdma/src/x.rs", ok_swallow)),
            ["error-swallow"]
        );
        let bare = "fn f() {\n    handle.wait(ctx);\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/rdma/src/x.rs", bare)),
            ["error-swallow"]
        );
        // Barrier results are in scope too.
        let barrier = "fn f() {\n    rt.try_sync_named(ctx, phase::HISTOGRAM, m).ok();\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/workload/src/x.rs", barrier)),
            ["error-swallow"]
        );
    }

    #[test]
    fn error_swallow_accepts_propagation_matching_and_tests() {
        let propagate = "fn f() -> Result<(), JoinError> {\n    \
                         let c = window.drain(ctx).map_err(fab)?;\n    use_it(c);\n    Ok(())\n}\n";
        assert!(lint_file("crates/rdma/src/x.rs", propagate).is_empty());
        let matched = "fn f() {\n    match nic.recv(ctx) {\n        Ok(c) => use_it(c),\n        \
                       Err(e) => record(e),\n    }\n}\n";
        assert!(lint_file("crates/rdma/src/x.rs", matched).is_empty());
        let bound = "fn f() {\n    let res = handle.wait(ctx);\n    inspect(res);\n}\n";
        assert!(lint_file("crates/rdma/src/x.rs", bound).is_empty());
        // Tests may discard freely.
        let test = "fn t() { let _ = window.drain(ctx); }\n";
        assert!(lint_file("crates/rdma/tests/x.rs", test).is_empty());
        // A waiver applies.
        let waived = "fn f() {\n    \
                      // lint: allow-error-swallow(teardown path, errors already recorded)\n    \
                      let _ = window.drain(ctx);\n}\n";
        assert!(unwaived(lint_file("crates/rdma/src/x.rs", waived)).is_empty());
    }
}
