//! Machine-readable output and the committed-baseline workflow.
//!
//! `rsj-lint --json` emits a report of every finding (waived ones
//! included, with their reasons) so CI artifacts are auditable.
//! `--baseline lint-baseline.json` compares the current findings against
//! a committed snapshot: the exit code is nonzero only for findings
//! *absent* from the baseline, so pre-existing waived findings never
//! break the build while any new violation — or any new waiver that was
//! not explicitly re-baselined with `--update-baseline` — does.
//!
//! A baseline entry is keyed by `(file, rule, waived, reason-or-message)`
//! as a multiset, not by line number, so unrelated edits that shift lines
//! do not invalidate it. Both the writer and the (deliberately minimal)
//! parser live here; the crate stays zero-dependency.

use std::collections::BTreeMap;

use crate::Finding;

/// Baseline identity of a finding: `(file, rule, waived, reason-or-message)`.
/// Line numbers are excluded so the baseline survives unrelated edits.
pub fn finding_key(f: &Finding) -> (String, String, bool, String) {
    let note = f.reason.clone().unwrap_or_else(|| f.message.clone());
    (f.file.clone(), f.rule.to_string(), f.waived, note)
}

/// Serialize findings as a JSON report (stable field order, findings in
/// input order).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", quote(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": {}, ", quote(f.rule)));
        out.push_str(&format!("\"message\": {}, ", quote(&f.message)));
        out.push_str(&format!("\"waived\": {}", f.waived));
        if let Some(reason) = &f.reason {
            out.push_str(&format!(", \"reason\": {}", quote(reason)));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// A committed snapshot of known findings, held as a multiset of
/// [`finding_key`]s.
#[derive(Default)]
pub struct Baseline {
    counts: BTreeMap<(String, String, bool, String), usize>,
}

impl Baseline {
    /// Snapshot the current findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry(finding_key(f)).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Parse a baseline previously written by [`to_json`] /
    /// `--update-baseline`.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = parse_json(text)?;
        let Json::Object(top) = value else {
            return Err("baseline: top level is not an object".into());
        };
        let Some(Json::Array(items)) = top.iter().find(|(k, _)| k == "findings").map(|(_, v)| v)
        else {
            return Err("baseline: missing \"findings\" array".into());
        };
        let mut counts = BTreeMap::new();
        for item in items {
            let Json::Object(fields) = item else {
                return Err("baseline: finding is not an object".into());
            };
            let get_str = |name: &str| -> Option<String> {
                fields.iter().find_map(|(k, v)| match v {
                    Json::String(s) if k == name => Some(s.clone()),
                    _ => None,
                })
            };
            let file = get_str("file").ok_or("baseline: finding missing \"file\"")?;
            let rule = get_str("rule").ok_or("baseline: finding missing \"rule\"")?;
            let message = get_str("message").ok_or("baseline: finding missing \"message\"")?;
            let waived = fields
                .iter()
                .any(|(k, v)| k == "waived" && *v == Json::Bool(true));
            let note = get_str("reason").unwrap_or(message);
            *counts.entry((file, rule, waived, note)).or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// The findings not covered by this baseline: each baseline key
    /// absorbs as many matching findings as it has occurrences; the rest
    /// are new.
    pub fn new_findings<'a>(&self, findings: &'a [Finding]) -> Vec<&'a Finding> {
        let mut budget = self.counts.clone();
        findings
            .iter()
            .filter(|f| {
                let key = finding_key(f);
                match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                }
            })
            .collect()
    }
}

/// JSON string quoting with the escapes the report can produce.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The subset of JSON the baseline needs. Objects keep insertion order as
/// key/value pairs; duplicate keys are tolerated (first wins on lookup).
#[derive(Debug, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

/// Minimal recursive-descent JSON parser (no dependencies). Strict
/// enough for files this tool writes; errors carry a byte offset.
fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("json: trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let Json::String(key) = parse_value(b, pos)? else {
                    return Err(format!("json: object key is not a string at byte {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("json: expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("json: expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("json: expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("json: unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::String(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("json: truncated \\u escape")?;
                                let hex =
                                    std::str::from_utf8(hex).map_err(|_| "json: bad \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "json: bad \\u escape")?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("json: bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 scalar (may be multi-byte).
                        let start = *pos;
                        *pos += 1;
                        while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&b[start..*pos])
                                .map_err(|_| "json: invalid utf-8 in string")?,
                        );
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Number)
                .ok_or_else(|| format!("json: bad number at byte {start}"))
        }
        _ => Err(format!("json: unexpected byte at {pos}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, waived: bool, reason: Option<&str>) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: "unwrap",
            message: "unwrap() in library code".to_string(),
            waived,
            reason: reason.map(str::to_string),
        }
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let findings = vec![
            finding("crates/core/src/a.rs", 10, false, None),
            finding("crates/core/src/a.rs", 44, true, Some("checked \"above\"")),
        ];
        let json = to_json(&findings);
        let baseline = Baseline::from_json(&json).expect("report output must parse as a baseline");
        assert!(baseline.new_findings(&findings).is_empty());
    }

    #[test]
    fn baseline_is_keyed_by_identity_not_line() {
        let committed = vec![finding("crates/core/src/a.rs", 10, false, None)];
        let baseline = Baseline::from_findings(&committed);
        // Same finding, drifted line: still covered.
        let drifted = vec![finding("crates/core/src/a.rs", 99, false, None)];
        assert!(baseline.new_findings(&drifted).is_empty());
        // A second occurrence of the same key is new (multiset semantics).
        let doubled = vec![
            finding("crates/core/src/a.rs", 10, false, None),
            finding("crates/core/src/a.rs", 11, false, None),
        ];
        assert_eq!(baseline.new_findings(&doubled).len(), 1);
    }

    #[test]
    fn new_waivers_are_not_covered_by_an_unwaived_baseline_entry() {
        let committed = vec![finding("crates/core/src/a.rs", 10, false, None)];
        let baseline = Baseline::from_findings(&committed);
        // Waiving the finding changes its key: it must be re-baselined so
        // the waiver is reviewed.
        let waived = vec![finding("crates/core/src/a.rs", 10, true, Some("reason"))];
        assert_eq!(baseline.new_findings(&waived).len(), 1);
    }

    #[test]
    fn stale_baseline_entries_are_ignored() {
        let committed = vec![
            finding("crates/core/src/a.rs", 10, false, None),
            finding("crates/core/src/gone.rs", 5, false, None),
        ];
        let baseline = Baseline::from_findings(&committed);
        let current = vec![finding("crates/core/src/a.rs", 10, false, None)];
        assert!(baseline.new_findings(&current).is_empty());
    }

    #[test]
    fn parser_rejects_malformed_baselines() {
        assert!(Baseline::from_json("{").is_err());
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json("{\"findings\": [{\"rule\": \"x\"}]}").is_err());
        assert!(Baseline::from_json("{\"findings\": []} trailing").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let f = vec![finding("a\\b\"c\n.rs", 1, true, Some("tab\there"))];
        let json = to_json(&f);
        let baseline = Baseline::from_json(&json).expect("escaped strings must round-trip");
        assert!(baseline.new_findings(&f).is_empty());
    }
}
