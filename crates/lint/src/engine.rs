//! The rule engine: per-file token context, structural analysis, the
//! cross-file symbol table, and waiver resolution.
//!
//! Linting is a two-pass workspace operation:
//!
//! 1. **Collect** — every file is lexed once into a [`FileCtx`]; the
//!    engine gathers the workspace-wide [`Global`] context: identifiers
//!    declared with `std` hash-container types (for `nondet-iter`) and
//!    the canonical phase-constant order parsed from
//!    `crates/cluster/src/phase.rs` (for `barrier-protocol`).
//! 2. **Check** — each rule runs over each file's code-token stream with
//!    the global context in scope, emitting [`crate::Finding`]s.
//!
//! Waivers (`// lint: allow-<rule>(reason)`) are resolved here, against
//! *comment tokens only* — a marker inside a string literal no longer
//! counts, and a marker can never be shadowed by literal content.

use std::collections::BTreeSet;

use crate::lexer::{lex, Tok, TokKind};
use crate::Finding;

/// The simulator kernel implements virtual time on top of real OS threads
/// and synchronization, so thread/sync/nondet rules do not apply to it.
pub(crate) const KERNEL: &str = "crates/sim/src/kernel.rs";

/// Canonical phase-constant file; its declaration order defines the
/// cluster-wide barrier protocol.
pub(crate) const PHASE_FILE: &str = "crates/cluster/src/phase.rs";

/// Fallback canonical phase order, used only when the linted file set
/// does not include [`PHASE_FILE`] (e.g. single-file invocations in
/// tests). Kept in sync by the workspace self-test.
pub(crate) const DEFAULT_PHASE_ORDER: &[&str] = &[
    "HISTOGRAM",
    "NETWORK_PARTITION",
    "LOCAL_PARTITION",
    "BUILD_PROBE",
    "ONE_SIDED_PROBE",
    "ADMISSION",
];

/// One file, lexed and structurally analyzed.
pub(crate) struct FileCtx<'a> {
    /// Workspace-relative path (forward slashes).
    pub rel: &'a str,
    /// Code tokens (comments stripped).
    pub code: Vec<Tok<'a>>,
    /// Comment tokens, for waiver markers.
    pub comments: Vec<Tok<'a>>,
    /// Conditional-block depth (enclosing `if`/`else`/`match`/`while`/
    /// `loop`/`for` braces) before each code token.
    pub cond: Vec<u32>,
    /// Code-token index of the first `#[cfg(test)]` attribute; everything
    /// from there on is test code (the workspace convention puts
    /// `mod tests` last in each file). `usize::MAX` when absent.
    pub test_from: usize,
}

impl<'a> FileCtx<'a> {
    pub(crate) fn new(rel: &'a str, content: &'a str) -> FileCtx<'a> {
        let toks = lex(content);
        let mut code = Vec::with_capacity(toks.len());
        let mut comments = Vec::new();
        for t in toks {
            if t.is_comment() {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let mut cond = Vec::with_capacity(code.len());
        let mut stack: Vec<bool> = Vec::new();
        let mut conds: u32 = 0;
        let mut pending = false;
        let mut test_from = usize::MAX;
        for (i, t) in code.iter().enumerate() {
            cond.push(conds);
            match (t.kind, t.text) {
                (TokKind::Ident, "if" | "else" | "match" | "while" | "loop" | "for") => {
                    pending = true;
                }
                (TokKind::Punct, "{") => {
                    stack.push(pending);
                    if pending {
                        conds += 1;
                    }
                    pending = false;
                }
                (TokKind::Punct, "}") => {
                    let closed_conditional = stack.pop().unwrap_or(false);
                    if closed_conditional {
                        conds = conds.saturating_sub(1);
                    }
                }
                (TokKind::Punct, ";") => pending = false,
                _ => {}
            }
            if test_from == usize::MAX
                && t.text == "#"
                && matches_seq(&code, i, &["#", "[", "cfg", "(", "test", ")", "]"])
            {
                test_from = i;
            }
        }
        FileCtx {
            rel,
            code,
            comments,
            cond,
            test_from,
        }
    }

    /// Text of code token `i`, or `""` out of range.
    pub(crate) fn text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text)
    }

    /// Kind of code token `i` (`Punct` out of range).
    pub(crate) fn kind(&self, i: usize) -> TokKind {
        self.code.get(i).map_or(TokKind::Punct, |t| t.kind)
    }

    /// 1-based source line of code token `i`.
    pub(crate) fn line(&self, i: usize) -> usize {
        self.code.get(i).map_or(0, |t| t.line)
    }

    /// Do the code tokens starting at `i` match `pat` textually?
    pub(crate) fn seq(&self, i: usize, pat: &[&str]) -> bool {
        matches_seq(&self.code, i, pat)
    }

    /// Is code token `i` inside test code (a `#[cfg(test)]` region or a
    /// tests/benches/examples file)?
    pub(crate) fn in_test(&self, i: usize) -> bool {
        self.is_test_file() || i >= self.test_from
    }

    /// Does this path denote out-of-crate test/bench/example code?
    pub(crate) fn is_test_file(&self) -> bool {
        self.rel.contains("/tests/")
            || self.rel.contains("/benches/")
            || self.rel.contains("/examples/")
    }

    /// Index of the token matching the opener at `i` (`(`→`)`, `[`→`]`,
    /// `{`→`}`), or `None` if unbalanced.
    pub(crate) fn matching_close(&self, i: usize) -> Option<usize> {
        let (open, close) = match self.text(i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let mut bal = 0i32;
        for j in i..self.code.len() {
            match self.text(j) {
                t if t == open => bal += 1,
                t if t == close => {
                    bal -= 1;
                    if bal == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Index of the opener matching the closer at `i`, scanning backward.
    pub(crate) fn matching_open(&self, i: usize) -> Option<usize> {
        let (open, close) = match self.text(i) {
            ")" => ("(", ")"),
            "]" => ("[", "]"),
            "}" => ("{", "}"),
            _ => return None,
        };
        let mut bal = 0i32;
        for j in (0..=i).rev() {
            match self.text(j) {
                t if t == close => bal += 1,
                t if t == open => {
                    bal -= 1;
                    if bal == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// The statement containing code token `i`: `(start, end)` where
    /// `start` is the first token after the previous `;`/`{`/`}` at this
    /// brace level and `end` is the index of the terminating `;` (or the
    /// last token scanned). Paren/bracket/brace groups are skipped whole.
    pub(crate) fn stmt_range(&self, i: usize) -> (usize, usize) {
        let mut start = i;
        while start > 0 {
            let p = start - 1;
            match self.text(p) {
                ";" | "{" | "}" => break,
                ")" | "]" => {
                    start = self.matching_open(p).unwrap_or(0);
                }
                _ => start = p,
            }
        }
        let mut end = i;
        while end + 1 < self.code.len() {
            match self.text(end) {
                ";" => break,
                "(" | "[" | "{" => {
                    end = self.matching_close(end).unwrap_or(self.code.len() - 1);
                }
                _ => {}
            }
            end += 1;
        }
        (start, end)
    }

    /// All function definitions in this file.
    pub(crate) fn functions(&self) -> Vec<FnSpan> {
        let mut fns = Vec::new();
        let mut i = 0usize;
        while i < self.code.len() {
            if self.kind(i) == TokKind::Ident && self.text(i) == "fn" {
                if self.kind(i + 1) != TokKind::Ident {
                    i += 1;
                    continue; // `fn(usize) -> u64` pointer type
                }
                let name = self.text(i + 1).to_string();
                // Scan past the signature (parens balanced) to the body
                // `{` or a bodyless `;`.
                let mut j = i + 2;
                let mut body = None;
                while j < self.code.len() {
                    match self.text(j) {
                        "(" | "[" => j = self.matching_close(j).map_or(self.code.len(), |c| c),
                        "{" => {
                            let end = self.matching_close(j).unwrap_or(self.code.len() - 1);
                            body = Some((j, end));
                            break;
                        }
                        ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
                fns.push(FnSpan {
                    name,
                    name_idx: i + 1,
                    body,
                });
                i = j + 1;
                continue;
            }
            i += 1;
        }
        fns
    }
}

/// A function definition: its name and body token range.
pub(crate) struct FnSpan {
    /// Declared name.
    pub name: String,
    /// Code-token index of the name.
    pub name_idx: usize,
    /// `(open_brace, close_brace)` code-token indices, `None` for
    /// bodyless trait signatures.
    pub body: Option<(usize, usize)>,
}

fn matches_seq(code: &[Tok<'_>], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > code.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| code[i + k].text == *p)
}

/// Workspace-wide context shared by all per-file rule passes.
pub(crate) struct Global {
    /// Identifiers (fields, locals, params) declared with a `std`
    /// `HashMap`/`HashSet` anywhere in the workspace. Name-based, so a
    /// collision can over-approximate — waivers cover the rare false
    /// positive; silence on a real hazard is the failure mode we buy out
    /// of.
    pub hash_names: BTreeSet<String>,
    /// Canonical phase order: constant names from [`PHASE_FILE`] in
    /// declaration order.
    pub phase_order: Vec<String>,
}

impl Global {
    /// Collect the global context from all files.
    pub(crate) fn collect(ctxs: &[FileCtx<'_>]) -> Global {
        let mut hash_names = BTreeSet::new();
        let mut phase_order = Vec::new();
        for ctx in ctxs {
            collect_hash_names(ctx, &mut hash_names);
            if ctx.rel == PHASE_FILE {
                collect_phase_order(ctx, &mut phase_order);
            }
        }
        if phase_order.is_empty() {
            phase_order = DEFAULT_PHASE_ORDER.iter().map(|s| s.to_string()).collect();
        }
        Global {
            hash_names,
            phase_order,
        }
    }

    /// Canonical index of phase constant `name`, if any.
    pub(crate) fn phase_index(&self, name: &str) -> Option<usize> {
        self.phase_order.iter().position(|p| p == name)
    }
}

/// Record identifiers declared with hash-container types:
/// `name: …HashMap…` / `name: …HashSet…` (struct fields, params, `let`
/// annotations, struct-literal inits) and `let [mut] name = …HashMap::…`.
/// Test code is skipped: a test-local `keys: HashSet` must not poison
/// the name table for every library-code `keys` vector.
fn collect_hash_names(ctx: &FileCtx<'_>, out: &mut BTreeSet<String>) {
    const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
    if ctx.is_test_file() {
        return;
    }
    let n = ctx.code.len().min(ctx.test_from);
    for i in 0..n {
        // `name :` (single colon, not `::`).
        if ctx.kind(i) == TokKind::Ident
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) != ":"
            && (i == 0 || ctx.text(i - 1) != ":")
        {
            // Scan the type/init expression up to a terminator, skipping
            // nothing fancy: HashMap/HashSet appear before any top-level
            // `,` in every declaration shape we care about.
            for j in (i + 2)..n.min(i + 2 + 24) {
                match ctx.text(j) {
                    "," | ";" | "=" | ")" | "{" | "}" => break,
                    t if HASH_TYPES.contains(&t) => {
                        out.insert(ctx.text(i).to_string());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `let [mut] name = … HashMap/HashSet …;`
        if ctx.text(i) == "let" && ctx.kind(i) == TokKind::Ident {
            let mut k = i + 1;
            if ctx.text(k) == "mut" {
                k += 1;
            }
            if ctx.kind(k) == TokKind::Ident && ctx.text(k + 1) == "=" {
                let (_, end) = ctx.stmt_range(k + 1);
                if (k + 2..=end).any(|j| HASH_TYPES.contains(&ctx.text(j))) {
                    out.insert(ctx.text(k).to_string());
                }
            }
        }
    }
}

/// Parse `pub const NAME: &str = "…";` declarations in order.
fn collect_phase_order(ctx: &FileCtx<'_>, out: &mut Vec<String>) {
    for i in 0..ctx.code.len() {
        if ctx.text(i) == "const" && ctx.kind(i + 1) == TokKind::Ident && ctx.text(i + 2) == ":" {
            out.push(ctx.text(i + 1).to_string());
        }
    }
}

/// Resolve waivers: a finding is waived when a comment token starting on
/// its line or the line directly above carries
/// `lint: allow-<rule>(<non-empty reason>)`.
pub(crate) fn apply_waivers(ctx: &FileCtx<'_>, findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if f.file != ctx.rel {
            continue;
        }
        let needle = format!("lint: allow-{}(", f.rule);
        for c in &ctx.comments {
            if c.line != f.line && c.line + 1 != f.line {
                continue;
            }
            if let Some(pos) = c.text.find(&needle) {
                let rest = &c.text[pos + needle.len()..];
                if let Some(close) = rest.find(')') {
                    let reason = rest[..close].trim();
                    if !reason.is_empty() {
                        f.waived = true;
                        f.reason = Some(reason.to_string());
                        break;
                    }
                }
            }
        }
    }
}
