//! A minimal, zero-dependency Rust token lexer.
//!
//! The rule engine needs *token-level* accuracy where the old line-based
//! scanner had none: raw strings (`r#"…"#`), multi-line block comments
//! (nested, per Rust), char literals vs lifetimes, and byte/raw-byte
//! string prefixes. Each of those becomes exactly one token here, so a
//! rule pattern can never fire on text inside a literal or a comment —
//! the literal-masking bug class of the old scanner is gone by
//! construction.
//!
//! The lexer is deliberately lossy in ways the rules do not care about:
//! multi-character operators come out as runs of single-character
//! [`TokKind::Punct`] tokens (`::` is two `:`), and numeric literal
//! grammar is approximate. It never fails: unknown bytes become `Punct`
//! tokens, and unterminated literals run to end of input.

/// Classification of one token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#name`).
    Ident,
    /// Lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\u{7B}'`, `b'\n'`.
    Char,
    /// Numeric literal (integers and floats, suffix included).
    Num,
    /// `// …` comment, to end of line (doc comments included).
    LineComment,
    /// `/* … */` comment, nested, possibly spanning lines.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One lexed token: kind, exact source text, and 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    /// Token classification.
    pub kind: TokKind,
    /// The token's source text, byte-exact.
    pub text: &'a str,
    /// 1-based line on which the token starts.
    pub line: usize,
}

impl<'a> Tok<'a> {
    /// Is this token a comment (line or block)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `src` into tokens. Whitespace is dropped; everything else —
/// comments included — is kept so callers can split code from comments
/// themselves.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let len = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < len {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Comments.
        if c == b'/' && i + 1 < len && b[i + 1] == b'/' {
            while i < len && b[i] != b'\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }
        if c == b'/' && i + 1 < len && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < len && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < len && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < len && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            i = scan_quoted(b, i, b'"', &mut line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == b'\'' {
            let (end, kind) = scan_char_or_lifetime(b, i, &mut line);
            i = end;
            toks.push(Tok {
                kind,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }
        // Identifier — possibly a string prefix (`r`, `b`, `br`, `c`,
        // `cr`) or a raw identifier (`r#name`).
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < len && is_ident_cont(b[j]) {
                j += 1;
            }
            let word = &src[i..j];
            let prefixed = matches!(word, "r" | "b" | "br" | "c" | "cr");
            if prefixed && j < len && (b[j] == b'"' || b[j] == b'#') {
                let raw = word != "b" && word != "c";
                if let Some(end) = scan_prefixed_string(b, j, raw, &mut line) {
                    i = end;
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                // `r#name`: a raw identifier, not a string.
                if word == "r" && b[j] == b'#' && j + 1 < len && is_ident_start(b[j + 1]) {
                    let mut k = j + 1;
                    while k < len && is_ident_cont(b[k]) {
                        k += 1;
                    }
                    i = k;
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
            }
            // Byte-char literal `b'x'`.
            if word == "b" && j < len && b[j] == b'\'' {
                let (end, kind) = scan_char_or_lifetime(b, j, &mut line);
                if kind == TokKind::Char {
                    i = end;
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
            }
            i = j;
            toks.push(Tok {
                kind: TokKind::Ident,
                text: word,
                line: start_line,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < len {
                let d = b[j];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    j += 1;
                } else if d == b'.' && j + 1 < len && b[j + 1].is_ascii_digit() {
                    // Float; `0..n` ranges keep their dots.
                    j += 1;
                } else if (d == b'+' || d == b'-')
                    && matches!(b[j - 1], b'e' | b'E')
                    && j + 1 < len
                    && b[j + 1].is_ascii_digit()
                {
                    // Exponent sign.
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            toks.push(Tok {
                kind: TokKind::Num,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }
        // Everything else: one character of punctuation (full UTF-8
        // character, so multi-byte symbols stay intact).
        let ch_len = src[i..].chars().next().map_or(1, |ch| ch.len_utf8());
        i += ch_len;
        toks.push(Tok {
            kind: TokKind::Punct,
            text: &src[start..i],
            line: start_line,
        });
    }
    toks
}

/// Scan a quoted literal starting at the opening quote `b[i] == quote`,
/// honoring backslash escapes; returns the index just past the closing
/// quote (or `len` if unterminated). Tracks newlines.
fn scan_quoted(b: &[u8], i: usize, quote: u8, line: &mut usize) -> usize {
    let len = b.len();
    let mut j = i + 1;
    let mut escaped = false;
    while j < len {
        let c = b[j];
        if c == b'\n' {
            *line += 1;
        }
        if escaped {
            escaped = false;
        } else if c == b'\\' {
            escaped = true;
        } else if c == quote {
            return j + 1;
        }
        j += 1;
    }
    len
}

/// Scan a raw or byte string whose hashes/quote start at `j` (just past
/// the prefix word). `raw` strings take `#` guards and no escapes;
/// non-raw (`b"…"`, `c"…"`) take escapes. Returns `None` if this is not
/// actually a string here (e.g. `r#name`).
fn scan_prefixed_string(b: &[u8], j: usize, raw: bool, line: &mut usize) -> Option<usize> {
    let len = b.len();
    let mut hashes = 0usize;
    let mut k = j;
    if raw {
        while k < len && b[k] == b'#' {
            hashes += 1;
            k += 1;
        }
    }
    if k >= len || b[k] != b'"' {
        return None;
    }
    if !raw {
        return Some(scan_quoted(b, k, b'"', line));
    }
    // Raw: no escapes; closes on `"` followed by `hashes` hash marks.
    k += 1;
    while k < len {
        if b[k] == b'\n' {
            *line += 1;
            k += 1;
            continue;
        }
        if b[k] == b'"' {
            let mut h = 0usize;
            while h < hashes && k + 1 + h < len && b[k + 1 + h] == b'#' {
                h += 1;
            }
            if h == hashes {
                return Some(k + 1 + hashes);
            }
        }
        k += 1;
    }
    Some(len)
}

/// At a `'`: decide char literal vs lifetime and scan it. Returns the end
/// index and the kind.
fn scan_char_or_lifetime(b: &[u8], i: usize, line: &mut usize) -> (usize, TokKind) {
    let len = b.len();
    if i + 1 >= len {
        return (i + 1, TokKind::Punct);
    }
    let n1 = b[i + 1];
    if n1 == b'\\' {
        return (scan_quoted(b, i, b'\'', line), TokKind::Char);
    }
    if is_ident_start(n1) {
        // `'a'` is a char; `'a`, `'static` are lifetimes. An ident run
        // directly followed by a closing quote is a (one-char) literal.
        let mut j = i + 1;
        while j < len && is_ident_cont(b[j]) {
            j += 1;
        }
        if j < len && b[j] == b'\'' {
            return (j + 1, TokKind::Char);
        }
        return (j, TokKind::Lifetime);
    }
    if n1 == b'\'' {
        // `''` — malformed; treat as empty char literal.
        return (i + 2, TokKind::Char);
    }
    // `'{'`, `' '`, multi-byte chars.
    (scan_quoted(b, i, b'\'', line), TokKind::Char)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let toks = kinds(r##"let s = r#"std::thread::spawn inside"#;"##);
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "s"),
                (TokKind::Punct, "="),
                (TokKind::Str, r##"r#"std::thread::spawn inside"#"##),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn raw_string_hash_guards_nest_quotes() {
        let src = "r##\"a \"# b\"##";
        let toks = lex(src);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].text, src);
    }

    #[test]
    fn byte_and_c_strings_lex_as_strings() {
        for src in [
            "b\"bytes\"",
            "br#\"raw bytes\"#",
            "c\"cstr\"",
            "cr\"raw c\"",
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokKind::Str, "{src}");
        }
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#fn + r#type");
        assert_eq!(toks[0], (TokKind::Ident, "r#fn"));
        assert_eq!(toks[2], (TokKind::Ident, "r#type"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[0].text, "/* outer /* inner */ still comment */");
        assert_eq!(toks[1].kind, TokKind::Ident);
        assert_eq!(toks[1].text, "code");
    }

    #[test]
    fn multiline_block_comment_tracks_lines() {
        let src = "/* a\nb\nc */ x\ny";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 3);
        assert_eq!(toks[2].text, "y");
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("'a' 'x 'static '{' '\\u{7B}' '\\n'");
        assert_eq!(
            toks,
            vec![
                (TokKind::Char, "'a'"),
                (TokKind::Lifetime, "'x"),
                (TokKind::Lifetime, "'static"),
                (TokKind::Char, "'{'"),
                (TokKind::Char, "'\\u{7B}'"),
                (TokKind::Char, "'\\n'"),
            ]
        );
    }

    #[test]
    fn byte_char_literal() {
        let toks = kinds("b'\\n' b'x'");
        assert_eq!(toks[0], (TokKind::Char, "b'\\n'"));
        assert_eq!(toks[1], (TokKind::Char, "b'x'"));
    }

    #[test]
    fn generic_lifetime_bound_is_not_a_char() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn strings_with_escapes_and_embedded_quotes() {
        let toks = kinds(r#"let s = "a \" b \\";"#);
        assert_eq!(toks[3], (TokKind::Str, r#""a \" b \\""#));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let src = "\"a\nb\" x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = kinds("1.5e-3 0..16 0xFF 1_000u64");
        assert_eq!(toks[0], (TokKind::Num, "1.5e-3"));
        assert_eq!(toks[1], (TokKind::Num, "0"));
        assert_eq!(toks[2], (TokKind::Punct, "."));
        assert_eq!(toks[3], (TokKind::Punct, "."));
        assert_eq!(toks[4], (TokKind::Num, "16"));
        assert_eq!(toks[5], (TokKind::Num, "0xFF"));
        assert_eq!(toks[6], (TokKind::Num, "1_000u64"));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panic() {
        for src in ["\"open", "r#\"open", "'", "/* open"] {
            let _ = lex(src);
        }
    }
}
