//! The rule passes. Every rule runs over a [`FileCtx`]'s code-token
//! stream with the workspace [`Global`] context in scope and pushes
//! [`Finding`]s; waivers are resolved afterwards by the engine.

use crate::engine::{FileCtx, Global, KERNEL};
use crate::lexer::TokKind;
use crate::Finding;

/// Rule identifiers in reporting order (8 ported + 4 new families).
pub const RULES: &[&str] = &[
    "std-thread",
    "std-sync",
    "wall-clock",
    "mr-access",
    "unwrap",
    "hot-alloc",
    "fabric-panic",
    "barrier-name",
    "nondet-iter",
    "barrier-protocol",
    "error-swallow",
    "meter-flush",
];

/// Minimum length for an `.expect("…")` message to count as descriptive.
const MIN_EXPECT_LEN: usize = 10;

/// Fabric post/poll methods returning typed `FabricError` results.
const FABRIC_METHODS: [&str; 4] = ["wait", "recv", "admit", "drain"];

/// Fallible barrier/run entry points returning `JoinError` results.
const JOIN_METHODS: [&str; 3] = ["try_sync_named", "try_sync", "try_sync_quiet"];

/// Iteration-order-sensitive methods on `std` hash containers.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Chain-terminal folds that are order-independent, so hash iteration
/// feeding them is deterministic.
const ORDER_FREE_FOLDS: [&str; 8] = [
    "sum", "count", "min", "max", "len", "any", "all", "is_empty",
];

/// Run every rule over one file.
pub(crate) fn check_file(ctx: &FileCtx<'_>, global: &Global, out: &mut Vec<Finding>) {
    let is_kernel = ctx.rel == KERNEL;
    let in_rdma = ctx.rel.starts_with("crates/rdma/");
    let in_cluster = ctx.rel.starts_with("crates/cluster/");
    let in_joins = ctx.rel.starts_with("crates/joins/");
    let n = ctx.code.len();

    let push = |rule: &'static str, line: usize, message: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            file: ctx.rel.to_string(),
            line,
            rule,
            message,
            waived: false,
            reason: None,
        });
    };

    for i in 0..n {
        let test = ctx.in_test(i);

        // ---- std-thread: everywhere (tests included), kernel exempt.
        // The short `thread::spawn(` form is skipped when it is just the
        // tail of a full `std::thread::spawn` path (already matched).
        let tail_of_path = i > 0 && ctx.text(i - 1) == ":";
        if !is_kernel
            && (ctx.seq(i, &["std", ":", ":", "thread", ":", ":", "spawn"])
                || (!tail_of_path && ctx.seq(i, &["thread", ":", ":", "spawn", "("])))
        {
            push(
                "std-thread",
                ctx.line(i),
                "OS thread creation in simulated code; spawn an rsj-sim task instead".into(),
                out,
            );
        }

        // ---- wall-clock: everywhere, tests included.
        if ctx.seq(i, &["std", ":", ":", "time", ":", ":", "Instant"])
            || ctx.seq(i, &["std", ":", ":", "time", ":", ":", "SystemTime"])
            || (!tail_of_path
                && (ctx.seq(i, &["Instant", ":", ":", "now", "("])
                    || ctx.seq(i, &["SystemTime", ":", ":", "now", "("])))
        {
            push(
                "wall-clock",
                ctx.line(i),
                "wall-clock read breaks deterministic simulation; use SimCtx::now()".into(),
                out,
            );
        }

        if test {
            continue; // remaining rules are library-code rules
        }

        // ---- std-sync: kernel exempt.
        if !is_kernel && ctx.seq(i, &["std", ":", ":", "sync", ":", ":"]) {
            let blocking = ["Mutex", "Barrier", "Condvar"];
            let j = i + 6;
            let hit = if blocking.contains(&ctx.text(j)) {
                true
            } else if ctx.text(j) == "{" {
                // Brace import: scan the group.
                let close = ctx.matching_close(j).unwrap_or(j);
                (j..=close).any(|k| blocking.contains(&ctx.text(k)))
            } else {
                false
            };
            if hit {
                push(
                    "std-sync",
                    ctx.line(i),
                    "OS sync primitive invisible to the simulation kernel; use parking_lot::Mutex \
                     for data, rsj-sim primitives for waiting"
                        .into(),
                    out,
                );
            }
        }

        // ---- mr-access: outside crates/rdma.
        if !in_rdma
            && ctx.text(i) == "."
            && matches!(ctx.text(i + 1), "take_data" | "with_data" | "dma_write")
            && ctx.text(i + 2) == "("
        {
            push(
                "mr-access",
                ctx.line(i),
                "direct Mr byte access outside rsj-rdma bypasses the verbs contract validator"
                    .into(),
                out,
            );
        }

        // ---- unwrap / short expect.
        if ctx.seq(i, &[".", "unwrap", "(", ")"]) {
            push(
                "unwrap",
                ctx.line(i + 1),
                "unwrap() in library code; state the broken invariant with expect(), or add a \
                 lint marker with the reason it cannot fail"
                    .into(),
                out,
            );
        }
        if ctx.seq(i, &[".", "expect", "("]) && ctx.kind(i + 3) == TokKind::Str {
            let msg = str_inner(ctx.text(i + 3));
            if msg.len() < MIN_EXPECT_LEN {
                push(
                    "unwrap",
                    ctx.line(i + 1),
                    format!("non-descriptive expect message {msg:?}; say what invariant broke"),
                    out,
                );
            }
        }

        // ---- fabric-panic: panicking on fabric post/poll results.
        if ctx.text(i) == "." && FABRIC_METHODS.contains(&ctx.text(i + 1)) && ctx.text(i + 2) == "("
        {
            if let Some(close) = ctx.matching_close(i + 2) {
                if ctx.seq(close + 1, &[".", "unwrap", "("])
                    || ctx.seq(close + 1, &[".", "expect", "("])
                {
                    push(
                        "fabric-panic",
                        ctx.line(close + 2),
                        "panic on a fallible fabric post/poll result in library code; propagate \
                         the error as a JoinError so the run aborts cleanly instead of crashing"
                            .into(),
                        out,
                    );
                }
            }
        }

        // ---- barrier-name: raw string literal barrier names outside
        // crates/cluster.
        if !in_cluster
            && ctx.text(i) == "."
            && matches!(ctx.text(i + 1), "sync_named" | "try_sync_named")
            && ctx.text(i + 2) == "("
        {
            if let Some(close) = ctx.matching_close(i + 2) {
                if (i + 3..close).any(|k| ctx.kind(k) == TokKind::Str) {
                    push(
                        "barrier-name",
                        ctx.line(i + 1),
                        "raw barrier-name string at a sync_named call site; use the \
                         rsj_cluster::phase constants so the (QueryId, phase) namespace stays \
                         canonical"
                            .into(),
                        out,
                    );
                }
            }
        }

        // ---- nondet-iter: hash-container iteration in result-affecting
        // library code (kernel exempt like the other determinism rules'
        // implementation layer).
        if !is_kernel {
            nondet_iter_at(ctx, global, i, out);
        }

        // ---- error-swallow.
        if !is_kernel {
            error_swallow_at(ctx, i, out);
        }
    }

    // ---- hot-alloc: allocation inside designated hot kernels in
    // crates/joins.
    if in_joins {
        hot_alloc(ctx, out);
    }

    // ---- barrier-protocol: phase-sequence verification for operator
    // entry points in crates/core and crates/operators.
    if ctx.rel.starts_with("crates/core/src/") || ctx.rel.starts_with("crates/operators/src/") {
        barrier_protocol(ctx, global, out);
    }

    // ---- meter-flush: settle-on-interaction audit for the same layer.
    if ctx.rel.starts_with("crates/core/src/") || ctx.rel.starts_with("crates/operators/src/") {
        meter_flush(ctx, out);
    }
}

/// The inner text of a string-literal token (quotes and prefixes
/// stripped; raw-string hash guards too).
fn str_inner(text: &str) -> &str {
    let t = text
        .trim_start_matches(['r', 'b', 'c'])
        .trim_start_matches('#')
        .trim_end_matches('#');
    t.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(t)
}

/// `nondet-iter` at one token position: a hash-iteration method call or a
/// `for … in <hash>` loop, minus order-independent sinks.
fn nondet_iter_at(ctx: &FileCtx<'_>, global: &Global, i: usize, out: &mut Vec<Finding>) {
    const MSG: &str = "iteration order of a std HashMap/HashSet varies run-to-run (per-process \
                       random SipHash seed); use BTreeMap/BTreeSet, or collect and sort the keys \
                       before iterating/draining";
    // Method form: `<hash-chain>.keys()` etc.
    if ctx.text(i) == "."
        && HASH_ITER_METHODS.contains(&ctx.text(i + 1))
        && ctx.text(i + 2) == "("
        && receiver_is_hashy(ctx, global, i)
    {
        if let Some(close) = ctx.matching_close(i + 2) {
            if !sink_is_order_free(ctx, i, close) {
                out.push(Finding {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i + 1),
                    rule: "nondet-iter",
                    message: format!("`.{}()` on a std hash container: {MSG}", ctx.text(i + 1)),
                    waived: false,
                    reason: None,
                });
            }
        }
        return;
    }
    // Loop form: `for <pat> in [&][mut] <hash-path> {`.
    if ctx.text(i) == "for" && ctx.kind(i) == TokKind::Ident {
        let limit = (i + 60).min(ctx.code.len());
        let mut in_idx = None;
        for j in i + 1..limit {
            match ctx.text(j) {
                "in" if ctx.kind(j) == TokKind::Ident => {
                    in_idx = Some(j);
                    break;
                }
                "{" | ";" => break,
                "(" | "[" => {
                    // skip the pattern group
                    if let Some(c) = ctx.matching_close(j) {
                        if c >= limit {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        let Some(in_idx) = in_idx else { return };
        let mut brace = None;
        for j in in_idx + 1..limit {
            match ctx.text(j) {
                "{" => {
                    brace = Some(j);
                    break;
                }
                ";" => break,
                "(" | "[" => {
                    if let Some(c) = ctx.matching_close(j) {
                        if c >= limit {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        let Some(brace) = brace else { return };
        let expr: Vec<usize> = (in_idx + 1..brace).collect();
        // Ranges (`0..map.len()`) and calls are out of scope here; the
        // method form above covers explicit iterator calls.
        let has_range = expr
            .windows(2)
            .any(|w| ctx.text(w[0]) == "." && ctx.text(w[1]) == ".");
        let has_call = expr.iter().any(|&j| ctx.text(j) == "(");
        let hashy = expr
            .iter()
            .any(|&j| ctx.kind(j) == TokKind::Ident && global.hash_names.contains(ctx.text(j)));
        if hashy && !has_range && !has_call {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: ctx.line(i),
                rule: "nondet-iter",
                message: format!("`for … in` over a std hash container: {MSG}"),
                waived: false,
                reason: None,
            });
        }
    }
}

/// Walk the receiver chain left of the `.` at `dot`: does it name an
/// identifier declared with a hash-container type anywhere in the
/// workspace? Skips balanced `(…)`/`[…]` groups (`.lock()`, indexing).
fn receiver_is_hashy(ctx: &FileCtx<'_>, global: &Global, dot: usize) -> bool {
    let mut j = dot as isize - 1;
    let mut steps = 0;
    while j >= 0 && steps < 48 {
        steps += 1;
        let idx = j as usize;
        match ctx.text(idx) {
            ")" | "]" => match ctx.matching_open(idx) {
                Some(o) => j = o as isize - 1,
                None => return false,
            },
            "." => j -= 1,
            t if ctx.kind(idx) == TokKind::Ident => {
                if global.hash_names.contains(t) {
                    return true;
                }
                j -= 1;
            }
            _ if ctx.kind(idx) == TokKind::Num => j -= 1, // tuple index `.0`
            _ => return false,
        }
    }
    false
}

/// Is the flagged hash iteration feeding an order-independent sink?
/// Either a commutative chain-terminal fold, a `collect` back into an
/// unordered/ordered container in the same statement, or a collect into
/// a `let` binding that one of the next two statements sorts.
fn sink_is_order_free(ctx: &FileCtx<'_>, dot: usize, close: usize) -> bool {
    if ctx.text(close + 1) == "." && ORDER_FREE_FOLDS.contains(&ctx.text(close + 2)) {
        return true;
    }
    let (s, e) = ctx.stmt_range(dot);
    let has_collect = (s..=e).any(|j| ctx.text(j) == "collect");
    if !has_collect {
        return false;
    }
    let resorts = ["HashMap", "HashSet", "BTreeMap", "BTreeSet", "BinaryHeap"];
    if (s..=e).any(|j| resorts.contains(&ctx.text(j))) {
        return true;
    }
    // `let [mut] NAME … = ….collect();` followed shortly by `NAME.sort*`.
    let mut k = s;
    if ctx.text(k) != "let" {
        return false;
    }
    k += 1;
    if ctx.text(k) == "mut" {
        k += 1;
    }
    if ctx.kind(k) != TokKind::Ident {
        return false;
    }
    let name = ctx.text(k);
    let mut p = e + 1;
    for _ in 0..2 {
        if p >= ctx.code.len() {
            break;
        }
        let (s2, e2) = ctx.stmt_range(p);
        let mut j = s2;
        while j + 2 <= e2 {
            if ctx.text(j) == name && ctx.text(j + 1) == "." && ctx.text(j + 2).starts_with("sort")
            {
                return true;
            }
            j += 1;
        }
        p = e2 + 1;
    }
    false
}

/// `error-swallow` patterns at one token position: `let _ =` discards of
/// fabric/`JoinError` results, `.ok()` on them, and bare-semicolon
/// statement discards.
fn error_swallow_at(ctx: &FileCtx<'_>, i: usize, out: &mut Vec<Finding>) {
    let fallible = |t: &str| FABRIC_METHODS.contains(&t) || JOIN_METHODS.contains(&t);
    // `let _ = <stmt containing a fabric call>;`
    if ctx.seq(i, &["let", "_", "="]) {
        let (_, e) = ctx.stmt_range(i);
        let has_fabric = (i + 3..e)
            .any(|j| ctx.text(j) == "." && fallible(ctx.text(j + 1)) && ctx.text(j + 2) == "(");
        if has_fabric {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: ctx.line(i),
                rule: "error-swallow",
                message: "`let _ =` discards a fabric/JoinError result; fault-plane errors \
                          (DESIGN.md §8) must propagate or be matched explicitly"
                    .into(),
                waived: false,
                reason: None,
            });
        }
        return;
    }
    if ctx.text(i) == "." && fallible(ctx.text(i + 1)) && ctx.text(i + 2) == "(" {
        let Some(close) = ctx.matching_close(i + 2) else {
            return;
        };
        // `.ok()` swallows the typed error.
        if ctx.seq(close + 1, &[".", "ok", "(", ")"]) {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: ctx.line(close + 2),
                rule: "error-swallow",
                message: format!(
                    "`.ok()` on a fallible `{}` result silently drops the typed error; match it \
                     or propagate it as a JoinError",
                    ctx.text(i + 1)
                ),
                waived: false,
                reason: None,
            });
            return;
        }
        // Bare statement discard: `window.drain(ctx);` with no binding,
        // `?`, or `return` in the statement.
        if ctx.text(close + 1) == ";" {
            let (s, _) = ctx.stmt_range(i);
            let plain = !(s..close).any(|j| {
                matches!(
                    ctx.text(j),
                    "let" | "=" | "?" | "return" | "match" | "if" | "while"
                )
            });
            if plain {
                out.push(Finding {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i + 1),
                    rule: "error-swallow",
                    message: format!(
                        "result of fallible `{}` is discarded; bind it, `?` it, or match it so \
                         fabric errors abort the run cleanly",
                        ctx.text(i + 1)
                    ),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
}

/// `hot-alloc`: `vec!` / `Vec::new` inside `*_kernel` / `histogram*` /
/// `scatter*` functions in crates/joins (non-test).
fn hot_alloc(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for f in ctx.functions() {
        if ctx.in_test(f.name_idx) || !is_hot_kernel_name(&f.name) {
            continue;
        }
        let Some((open, end)) = f.body else { continue };
        for i in open..=end {
            if ctx.seq(i, &["vec", "!"]) || ctx.seq(i, &["Vec", ":", ":", "new"]) {
                out.push(Finding {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i),
                    rule: "hot-alloc",
                    message: "allocation inside a hot kernel; move the buffer into the owning \
                              struct (e.g. Partitioner scratch) and reuse it across calls"
                        .into(),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
}

/// Is this function name one of the designated hot kernels?
fn is_hot_kernel_name(name: &str) -> bool {
    name.ends_with("_kernel") || name.starts_with("histogram") || name.starts_with("scatter")
}

/// One named-barrier call site inside a function.
struct BarrierCall {
    /// Code-token index of the method name.
    idx: usize,
    /// `phase::` constant name, if the name argument is a phase constant.
    konst: Option<String>,
    /// Conditional depth relative to the function body.
    rel_cond: u32,
}

/// `barrier-protocol`: per function, extract the `phase::` constants
/// passed to `sync_named`/`try_sync_named` in control-flow order and
/// verify (a) every barrier is unconditionally reached, (b) no plain
/// early `return` can skip a later barrier, and (c) the sequence follows
/// the canonical declaration order of `crates/cluster/src/phase.rs`.
/// `?`-propagation is exempt by design: a `JoinError` path aborts the
/// query and poisons its barriers, so skipping them is safe.
fn barrier_protocol(ctx: &FileCtx<'_>, global: &Global, out: &mut Vec<Finding>) {
    for f in ctx.functions() {
        if ctx.in_test(f.name_idx) {
            continue;
        }
        let Some((open, end)) = f.body else { continue };
        if open + 1 >= end {
            continue;
        }
        let base_cond = ctx.cond[open + 1];
        let mut calls: Vec<BarrierCall> = Vec::new();
        let mut returns: Vec<usize> = Vec::new(); // conditional plain returns
        for i in open + 1..end {
            if ctx.text(i) == "."
                && matches!(ctx.text(i + 1), "sync_named" | "try_sync_named")
                && ctx.text(i + 2) == "("
            {
                let close = ctx.matching_close(i + 2).unwrap_or(end);
                let mut konst = None;
                for k in i + 3..close {
                    if ctx.seq(k, &["phase", ":", ":"]) && ctx.kind(k + 3) == TokKind::Ident {
                        konst = Some(ctx.text(k + 3).to_string());
                        break;
                    }
                }
                calls.push(BarrierCall {
                    idx: i + 1,
                    konst,
                    rel_cond: ctx.cond[i].saturating_sub(base_cond),
                });
            }
            if ctx.text(i) == "return"
                && ctx.kind(i) == TokKind::Ident
                && ctx.cond[i] > base_cond
                && ctx.text(i + 1) != "Err"
            {
                returns.push(i);
            }
        }
        if calls.is_empty() {
            continue;
        }
        // (a) Conditionally-reached barriers.
        for c in &calls {
            if c.rel_cond > 0 {
                let name = c.konst.as_deref().unwrap_or("<dynamic>");
                out.push(Finding {
                    file: ctx.rel.to_string(),
                    line: ctx.line(c.idx),
                    rule: "barrier-protocol",
                    message: format!(
                        "barrier `{name}` in `{}` is reached only on some control-flow paths \
                         (conditional depth {}); a worker that skips it deadlocks every peer \
                         parked on the (QueryId, name) barrier",
                        f.name, c.rel_cond
                    ),
                    waived: false,
                    reason: None,
                });
            }
        }
        // (b) Early plain returns that can skip a later barrier.
        for &r in &returns {
            if let Some(c) = calls.iter().find(|c| c.idx > r) {
                let name = c.konst.as_deref().unwrap_or("<dynamic>");
                out.push(Finding {
                    file: ctx.rel.to_string(),
                    line: ctx.line(r),
                    rule: "barrier-protocol",
                    message: format!(
                        "early `return` in `{}` skips barrier `{name}` on this path; only \
                         `JoinError` propagation (`?`/`return Err`) may bypass a barrier, \
                         because it aborts the query and poisons its barriers",
                        f.name
                    ),
                    waived: false,
                    reason: None,
                });
            }
        }
        // (c) Canonical order (and unknown constants).
        let mut last: Option<(usize, String)> = None;
        for c in &calls {
            let Some(name) = &c.konst else { continue };
            let Some(idx) = global.phase_index(name) else {
                out.push(Finding {
                    file: ctx.rel.to_string(),
                    line: ctx.line(c.idx),
                    rule: "barrier-protocol",
                    message: format!(
                        "unknown phase constant `phase::{name}` in `{}`; the canonical set is \
                         declared in crates/cluster/src/phase.rs ({})",
                        f.name,
                        global.phase_order.join(" → ")
                    ),
                    waived: false,
                    reason: None,
                });
                continue;
            };
            if let Some((last_idx, last_name)) = &last {
                if idx <= *last_idx {
                    out.push(Finding {
                        file: ctx.rel.to_string(),
                        line: ctx.line(c.idx),
                        rule: "barrier-protocol",
                        message: format!(
                            "barrier `{name}` after `{last_name}` in `{}` violates the canonical \
                             phase order ({}); two operators disagreeing on barrier order is a \
                             cross-query deadlock in the (QueryId, name) namespace",
                            f.name,
                            global.phase_order.join(" → ")
                        ),
                        waived: false,
                        reason: None,
                    });
                }
            }
            last = Some((idx, name.clone()));
        }
    }
}

/// Meter charge/flush/interaction call sites relevant to `meter-flush`.
#[derive(Copy, Clone, PartialEq, Eq)]
enum MeterEvent {
    /// `.charge_bytes(` / `.charge_seconds(` — accrues unflushed time.
    Charge,
    /// `.flush(` — settles accrued time with the kernel.
    Flush,
    /// A park / barrier / fabric-post / recv call whose virtual-time
    /// position other tasks observe.
    Interaction,
}

/// Methods whose call marks a kernel-visible interaction point.
const INTERACTION_METHODS: [&str; 10] = [
    "park",
    "sync_named",
    "try_sync_named",
    "sync_quiet",
    "post_send",
    "post_send_windowed",
    "post_write",
    "post_read",
    "post_read_batch",
    "recv",
];

/// Meter charge methods.
const CHARGE_METHODS: [&str; 2] = ["charge_bytes", "charge_seconds"];

/// `meter-flush`: in functions that charge a [`Meter`], every
/// interaction call (park, named barrier, fabric post, recv) must be
/// preceded by a `.flush(` with no intervening charge — the
/// settle-on-interaction invariant that makes lazy settlement equivalent
/// to eager (DESIGN.md §12). Two passes: a linear control-flow-order scan,
/// plus a cyclic scan of each `loop`/`while`/`for` body so a charge at the
/// bottom of a loop reaching an interaction at its top (the receiver-loop
/// shape) is caught.
fn meter_flush(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for f in ctx.functions() {
        if ctx.in_test(f.name_idx) {
            continue;
        }
        let Some((open, end)) = f.body else { continue };
        // Events in token order. Only functions that actually charge a
        // meter are audited; pure consumers of ctx/fabric are out of scope.
        let mut events: Vec<(usize, MeterEvent)> = Vec::new();
        for i in open + 1..end {
            if ctx.text(i) != "." || ctx.text(i + 2) != "(" {
                continue;
            }
            let m = ctx.text(i + 1);
            if CHARGE_METHODS.contains(&m) {
                events.push((i + 1, MeterEvent::Charge));
            } else if m == "flush" {
                events.push((i + 1, MeterEvent::Flush));
            } else if INTERACTION_METHODS.contains(&m) {
                events.push((i + 1, MeterEvent::Interaction));
            }
        }
        if !events.iter().any(|(_, e)| *e == MeterEvent::Charge) {
            continue;
        }
        let report = |idx: usize, shape: &str, out: &mut Vec<Finding>| {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: ctx.line(idx),
                rule: "meter-flush",
                message: format!(
                    "interaction `{}` in `{}` is reachable with unflushed meter charges \
                     ({shape}); call meter.flush(ctx) first so the action's virtual-time \
                     position reflects all accrued compute (settle-on-interaction, \
                     DESIGN.md §12)",
                    ctx.text(idx),
                    f.name
                ),
                waived: false,
                reason: None,
            });
        };
        // Pass 1: linear order.
        let mut unflushed: Option<usize> = None;
        for &(idx, ev) in &events {
            match ev {
                MeterEvent::Charge => unflushed = Some(idx),
                MeterEvent::Flush => unflushed = None,
                MeterEvent::Interaction => {
                    if unflushed.take().is_some() {
                        report(idx, "straight-line path", out);
                    }
                }
            }
        }
        // Pass 2: cyclic scan per loop body. A charge with no flush before
        // the loop's bottom can wrap around to an interaction at its top.
        let mut i = open + 1;
        while i < end {
            if ctx.kind(i) == TokKind::Ident && matches!(ctx.text(i), "loop" | "while" | "for") {
                // Find the body brace of this loop header (skip groups).
                let mut j = i + 1;
                let mut brace = None;
                while j < end {
                    match ctx.text(j) {
                        "{" => {
                            brace = Some(j);
                            break;
                        }
                        ";" => break,
                        "(" | "[" => j = ctx.matching_close(j).unwrap_or(end),
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(lb) = brace {
                    let le = ctx.matching_close(lb).unwrap_or(end);
                    let body: Vec<&(usize, MeterEvent)> =
                        events.iter().filter(|(k, _)| *k > lb && *k < le).collect();
                    // Unflushed charge at the loop's bottom?
                    let tail_charge = body
                        .iter()
                        .rev()
                        .take_while(|(_, e)| *e != MeterEvent::Flush)
                        .any(|(_, e)| *e == MeterEvent::Charge);
                    if tail_charge {
                        // First interaction from the loop's top before any
                        // flush is reached with that charge pending.
                        if let Some((idx, _)) = body
                            .iter()
                            .take_while(|(_, e)| *e != MeterEvent::Flush)
                            .find(|(_, e)| *e == MeterEvent::Interaction)
                        {
                            report(*idx, "wrap-around within a loop", out);
                        }
                    }
                    // Keep scanning from the header so nested loops get
                    // their own cyclic pass.
                }
            }
            i += 1;
        }
    }
}
