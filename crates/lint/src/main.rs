//! `cargo run -p rsj-lint` — scan the workspace's `crates/` tree and
//! report rule findings. See the library docs for the rule table and the
//! waiver-marker syntax.
//!
//! ```text
//! rsj-lint [--json] [--baseline <file>] [--update-baseline]
//! ```
//!
//! * no flags — print findings, exit 1 if any *unwaived* finding exists.
//! * `--json` — print the full report (waived findings included, with
//!   reasons) as JSON on stdout; the human summary moves to stderr.
//! * `--baseline <file>` — compare against a committed baseline: exit 1
//!   only for findings absent from it (new violations and new waivers),
//!   so pre-existing reviewed findings never break CI. The path is
//!   resolved against the workspace root. Stale entries are ignored.
//! * `--update-baseline` — rewrite the baseline file from the current
//!   findings (after review) instead of failing on them.

use std::path::PathBuf;
use std::process::ExitCode;

use rsj_lint::report::{to_json, Baseline};
use rsj_lint::{find_workspace_root, lint_workspace, Finding};

struct Args {
    json: bool,
    baseline: Option<String>,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        baseline: None,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a file argument")?);
            }
            "--update-baseline" => args.update_baseline = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.update_baseline && args.baseline.is_none() {
        args.baseline = Some("lint-baseline.json".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rsj-lint: {e}");
            eprintln!("usage: rsj-lint [--json] [--baseline <file>] [--update-baseline]");
            return ExitCode::from(2);
        }
    };
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rsj-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "rsj-lint: no workspace Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            let crates_dir: PathBuf = root.join("crates");
            eprintln!("rsj-lint: failed to scan {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    let waived = findings.iter().filter(|f| f.waived).count();
    let unwaived = findings.len() - waived;

    if args.json {
        print!("{}", to_json(&findings));
    }

    if let Some(baseline_path) = &args.baseline {
        let path = root.join(baseline_path);
        if args.update_baseline {
            if let Err(e) = std::fs::write(&path, to_json(&findings)) {
                eprintln!("rsj-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "rsj-lint: baseline {} updated ({} finding(s): {unwaived} unwaived, {waived} waived)",
                path.display(),
                findings.len()
            );
            return ExitCode::SUCCESS;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rsj-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rsj-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let new: Vec<&Finding> = baseline.new_findings(&findings);
        if new.is_empty() {
            eprintln!(
                "rsj-lint: clean against baseline ({} finding(s): {unwaived} unwaived, {waived} waived)",
                findings.len()
            );
            return ExitCode::SUCCESS;
        }
        for f in &new {
            if !args.json {
                println!("{f}");
            } else {
                eprintln!("{f}");
            }
        }
        eprintln!(
            "rsj-lint: {} new finding(s) not in {} (re-run with --update-baseline after review)",
            new.len(),
            path.display()
        );
        return ExitCode::FAILURE;
    }

    // No baseline: classic mode — any unwaived finding fails.
    if !args.json {
        for f in findings.iter().filter(|f| !f.waived) {
            println!("{f}");
        }
    }
    if unwaived == 0 {
        eprintln!("rsj-lint: clean ({waived} waived finding(s))");
        ExitCode::SUCCESS
    } else {
        eprintln!("rsj-lint: {unwaived} finding(s) ({waived} waived)");
        ExitCode::FAILURE
    }
}
