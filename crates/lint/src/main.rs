//! `cargo run -p rsj-lint` — scan the workspace's `crates/` tree and exit
//! nonzero if any project rule is violated. See the library docs for the
//! rule table and the waiver-marker syntax.

use std::path::PathBuf;
use std::process::ExitCode;

use rsj_lint::{find_workspace_root, lint_workspace};

fn main() -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("rsj-lint: cannot read current directory: {e}");
        std::process::exit(2);
    });
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "rsj-lint: no workspace Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    match lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("rsj-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("rsj-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            let crates_dir: PathBuf = root.join("crates");
            eprintln!("rsj-lint: failed to scan {}: {e}", crates_dir.display());
            ExitCode::from(2)
        }
    }
}
