//! Radix partitioning kernels (§3.1).
//!
//! The radix hash join determines a tuple's partition from `b` low-order
//! key bits, split across `p` passes so that the number of partitions
//! created *simultaneously* (2^bᵢ) never exceeds the TLB entry / cache line
//! budget (Manegold et al.). These kernels are shared by the single-machine
//! baseline and the distributed join's local passes.

use rsj_workload::Tuple;

/// The partition index of `key` for a pass consuming `bits` bits starting
/// at `lo_bit`.
#[inline]
pub fn partition_of(key: u64, lo_bit: u32, bits: u32) -> usize {
    debug_assert!(bits > 0 && lo_bit + bits <= 64);
    ((key >> lo_bit) & ((1u64 << bits) - 1)) as usize
}

/// Count tuples per partition for one pass.
pub fn histogram<T: Tuple>(tuples: &[T], lo_bit: u32, bits: u32) -> Vec<u64> {
    let mut hist = vec![0u64; 1usize << bits];
    for t in tuples {
        hist[partition_of(t.key(), lo_bit, bits)] += 1;
    }
    hist
}

/// The output of one partitioning pass: tuples reordered so that partition
/// `p` occupies `data[offsets[p]..offsets[p + 1]]` — the contiguous layout
/// real radix joins use to keep partitions cache-friendly.
pub struct Partitioned<T> {
    /// Reordered tuples.
    pub data: Vec<T>,
    /// `parts + 1` prefix offsets into `data`.
    pub offsets: Vec<usize>,
}

impl<T: Tuple> Partitioned<T> {
    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The tuples of partition `p`.
    pub fn part(&self, p: usize) -> &[T] {
        &self.data[self.offsets[p]..self.offsets[p + 1]]
    }

    /// Sizes of all partitions, in tuples.
    pub fn sizes(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Pick `(b1, b2)` radix bits for a two-pass join over `n_tuples` tuples of
/// `tuple_size` bytes on `total_cores` cores: enough total bits that the
/// final partitions fit a `target_part_bytes` cache budget (the paper uses
/// ~32 KiB partitions, §6.4.3), at least one first-pass partition per core
/// (Eq. 14), and each pass narrow enough to respect TLB limits.
pub fn choose_radix_bits(
    n_tuples: u64,
    tuple_size: usize,
    total_cores: usize,
    target_part_bytes: usize,
) -> (u32, u32) {
    let total_bytes = n_tuples.max(1) * tuple_size as u64;
    let want_parts = (total_bytes / target_part_bytes.max(1) as u64).max(1);
    let mut total_bits = 64 - u64::leading_zeros(want_parts.next_power_of_two()) - 1;
    // At least one first-pass partition per core.
    let min_b1 = usize::BITS - (total_cores.max(1)).next_power_of_two().leading_zeros() - 1;
    total_bits = total_bits.clamp(min_b1 + 1, 24);
    let b1 = total_bits.div_ceil(2).clamp(min_b1, 12);
    let b2 = (total_bits - b1).clamp(1, 12);
    (b1, b2)
}

/// Concatenate several partitioned slices of the same input into one
/// [`Partitioned`] with the same partition count: partition `j` of the
/// result is the concatenation of partition `j` of every slice. Used by
/// the parallel local pass, where an oversized partition is second-pass
/// partitioned by several threads in slices (in the original this is a
/// shared-histogram scatter with no extra copy; the copy here is a
/// simulator artifact and is not charged).
pub fn concat_partitioned<T: Tuple>(slices: &[Partitioned<T>], parts: usize) -> Partitioned<T> {
    let mut offsets = vec![0usize; parts + 1];
    for s in slices {
        assert_eq!(s.parts(), parts, "slice partition count mismatch");
        for j in 0..parts {
            offsets[j + 1] += s.part(j).len();
        }
    }
    for j in 0..parts {
        offsets[j + 1] += offsets[j];
    }
    let mut data: Vec<T> = vec![T::new(0, 0); offsets[parts]];
    let mut cursor = offsets[..parts].to_vec();
    for s in slices {
        for j in 0..parts {
            let src = s.part(j);
            data[cursor[j]..cursor[j] + src.len()].copy_from_slice(src);
            cursor[j] += src.len();
        }
    }
    Partitioned { data, offsets }
}

/// One full partitioning pass: histogram, prefix sum, scatter.
pub fn partition<T: Tuple>(input: &[T], lo_bit: u32, bits: u32) -> Partitioned<T> {
    let hist = histogram(input, lo_bit, bits);
    let parts = hist.len();
    let mut offsets = Vec::with_capacity(parts + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &h in &hist {
        acc += h as usize;
        offsets.push(acc);
    }
    debug_assert_eq!(acc, input.len());
    let mut cursor: Vec<usize> = offsets[..parts].to_vec();
    // Scatter. T is small and Copy, so a write-once pass over an
    // uninitialized buffer is not worth the unsafety; zero-fill, overwrite.
    let mut data: Vec<T> = vec![T::new(0, 0); input.len()];
    for t in input {
        let p = partition_of(t.key(), lo_bit, bits);
        data[cursor[p]] = *t;
        cursor[p] += 1;
    }
    Partitioned { data, offsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsj_workload::Tuple16;

    #[test]
    fn partition_of_extracts_bit_ranges() {
        assert_eq!(partition_of(0b1011_0110, 0, 4), 0b0110);
        assert_eq!(partition_of(0b1011_0110, 4, 4), 0b1011);
        assert_eq!(partition_of(u64::MAX, 60, 4), 0b1111);
    }

    #[test]
    fn choose_radix_bits_respects_constraints() {
        // Paper-scale: 2 x 2048M 16-byte tuples on 80 cores, 32 KiB target.
        let (b1, b2) = choose_radix_bits(4_096_000_000, 16, 80, 32 * 1024);
        assert!(1 << b1 >= 80, "at least one first-pass partition per core");
        assert!(b1 <= 12 && b2 <= 12, "per-pass TLB budget");
        assert!(b1 + b2 >= 16, "enough total partitions for cache residency");
        // Tiny input: minimum viable bits, no overflow.
        let (b1, b2) = choose_radix_bits(10, 16, 4, 32 * 1024);
        assert!(b1 >= 1 && b2 >= 1);
        // Zero tuples must not panic.
        let _ = choose_radix_bits(0, 16, 1, 32 * 1024);
    }

    #[test]
    fn histogram_counts_every_tuple_once() {
        let tuples: Vec<Tuple16> = (0..1000u64).map(|k| Tuple16::new(k, k)).collect();
        let hist = histogram(&tuples, 0, 4);
        assert_eq!(hist.len(), 16);
        assert_eq!(hist.iter().sum::<u64>(), 1000);
        // Dense keys spread evenly over low bits.
        assert!(hist.iter().all(|&h| (62..=63).contains(&h)));
    }

    #[test]
    fn partition_groups_by_radix_and_preserves_multiset() {
        let tuples: Vec<Tuple16> = (0..512u64).map(|i| Tuple16::new(i * 7 + 3, i)).collect();
        let parted = partition(&tuples, 0, 5);
        assert_eq!(parted.parts(), 32);
        assert_eq!(parted.data.len(), tuples.len());
        for p in 0..32 {
            for t in parted.part(p) {
                assert_eq!(partition_of(t.key(), 0, 5), p);
            }
        }
        let mut orig: Vec<u64> = tuples.iter().map(|t| t.rid()).collect();
        let mut got: Vec<u64> = parted.data.iter().map(|t| t.rid()).collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
    }

    #[test]
    fn concat_partitioned_equals_single_pass() {
        let tuples: Vec<Tuple16> = (0..3_000u64).map(|i| Tuple16::new(i * 11 + 5, i)).collect();
        let whole = partition(&tuples, 2, 4);
        // Partition three uneven slices independently, then concatenate.
        let slices = [
            partition(&tuples[..700], 2, 4),
            partition(&tuples[700..1900], 2, 4),
            partition(&tuples[1900..], 2, 4),
        ];
        let merged = concat_partitioned(&slices, 16);
        assert_eq!(merged.data.len(), whole.data.len());
        for j in 0..16 {
            let mut a: Vec<u64> = whole.part(j).iter().map(|t| t.rid()).collect();
            let mut b: Vec<u64> = merged.part(j).iter().map(|t| t.rid()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "partition {j}");
        }
    }

    #[test]
    fn concat_partitioned_empty_input() {
        let merged = concat_partitioned::<Tuple16>(&[], 8);
        assert_eq!(merged.parts(), 8);
        assert!(merged.data.is_empty());
    }

    #[test]
    fn two_pass_partitioning_equals_one_wide_pass() {
        // Multi-pass refinement must produce the same partition contents as
        // a single pass over all bits (the radix join's core invariant).
        let tuples: Vec<Tuple16> = (0..4096u64).map(|i| Tuple16::new(i * 13 + 1, i)).collect();
        let one_pass = partition(&tuples, 0, 6);
        let coarse = partition(&tuples, 0, 3);
        for p1 in 0..coarse.parts() {
            let refined = partition(coarse.part(p1), 3, 3);
            for p2 in 0..refined.parts() {
                let wide_idx = (p2 << 3) | p1; // low bits first
                let mut a: Vec<u64> = refined.part(p2).iter().map(|t| t.key()).collect();
                let mut b: Vec<u64> = one_pass.part(wide_idx).iter().map(|t| t.key()).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "coarse {p1} refined {p2}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_partition_is_a_permutation(keys in prop::collection::vec(any::<u64>(), 0..300),
                                           bits in 1u32..8) {
            let tuples: Vec<Tuple16> =
                keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let parted = partition(&tuples, 0, bits);
            prop_assert_eq!(parted.parts(), 1usize << bits);
            prop_assert_eq!(*parted.offsets.last().unwrap(), tuples.len());
            let mut orig: Vec<(u64, u64)> = tuples.iter().map(|t| (t.key(), t.rid())).collect();
            let mut got: Vec<(u64, u64)> = parted.data.iter().map(|t| (t.key(), t.rid())).collect();
            orig.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(orig, got);
            // Each partition holds only its own radix values.
            for p in 0..parted.parts() {
                for t in parted.part(p) {
                    prop_assert_eq!(partition_of(t.key(), 0, bits), p);
                }
            }
        }
    }
}
