//! Radix partitioning kernels (§3.1).
//!
//! The radix hash join determines a tuple's partition from `b` low-order
//! key bits, split across `p` passes so that the number of partitions
//! created *simultaneously* (2^bᵢ) never exceeds the TLB entry / cache line
//! budget (Manegold et al.). These kernels are shared by the single-machine
//! baseline and the distributed join's local passes.
//!
//! ## Software write-combining (SWWC)
//!
//! The default scatter path stages tuples in per-partition cache-line-sized
//! buffers and flushes each line to the output in one bulk copy — the §3.1
//! optimisation that keeps one TLB entry and one open cache line per
//! partition hot instead of scattering single tuples across 2^b cold
//! destinations. A [`Partitioner`] owns the staging buffers (plus the
//! histogram and cursor arrays) so callers that loop over many partitions
//! reuse one allocation set instead of paying `malloc` per pass; it also
//! offers a fused pass ([`Partitioner::partition_with_hist`]) that skips
//! the histogram scan when the counts are already known.

use rsj_workload::Tuple;

/// The partition index of `key` for a pass consuming `bits` bits starting
/// at `lo_bit`.
#[inline]
pub fn partition_of(key: u64, lo_bit: u32, bits: u32) -> usize {
    debug_assert!(bits > 0 && lo_bit + bits <= 64);
    ((key >> lo_bit) & ((1u64 << bits) - 1)) as usize
}

/// Count tuples per partition for one pass, writing into `hist` (which is
/// cleared and resized to `2^bits`). The allocation-free form used by
/// callers that loop; see [`histogram`] for the one-shot convenience.
pub fn histogram_into<T: Tuple>(tuples: &[T], lo_bit: u32, bits: u32, hist: &mut Vec<u64>) {
    hist.clear();
    hist.resize(1usize << bits, 0);
    for t in tuples {
        hist[partition_of(t.key(), lo_bit, bits)] += 1;
    }
}

/// Count tuples per partition for one pass.
pub fn histogram<T: Tuple>(tuples: &[T], lo_bit: u32, bits: u32) -> Vec<u64> {
    // lint: allow-hot-alloc(one-shot convenience wrapper; looping callers use histogram_into)
    let mut hist = Vec::new();
    histogram_into(tuples, lo_bit, bits, &mut hist);
    hist
}

/// The output of one partitioning pass: tuples reordered so that partition
/// `p` occupies `data[offsets[p]..offsets[p + 1]]` — the contiguous layout
/// real radix joins use to keep partitions cache-friendly.
pub struct Partitioned<T> {
    /// Reordered tuples.
    pub data: Vec<T>,
    /// `parts + 1` prefix offsets into `data`.
    pub offsets: Vec<usize>,
}

impl<T: Tuple> Partitioned<T> {
    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The tuples of partition `p`.
    pub fn part(&self, p: usize) -> &[T] {
        &self.data[self.offsets[p]..self.offsets[p + 1]]
    }

    /// Sizes of all partitions, in tuples — a borrowed iterator, so looping
    /// callers never pay a per-call `Vec` allocation.
    pub fn sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.windows(2).map(|w| w[1] - w[0])
    }
}

/// Pick `(b1, b2)` radix bits for a two-pass join over `n_tuples` tuples of
/// `tuple_size` bytes on `total_cores` cores: enough total bits that the
/// final partitions fit a `target_part_bytes` cache budget (the paper uses
/// ~32 KiB partitions, §6.4.3), at least one first-pass partition per core
/// (Eq. 14), and each pass narrow enough to respect TLB limits.
pub fn choose_radix_bits(
    n_tuples: u64,
    tuple_size: usize,
    total_cores: usize,
    target_part_bytes: usize,
) -> (u32, u32) {
    let total_bytes = n_tuples.max(1) * tuple_size as u64;
    let want_parts = (total_bytes / target_part_bytes.max(1) as u64).max(1);
    let mut total_bits = 64 - u64::leading_zeros(want_parts.next_power_of_two()) - 1;
    // At least one first-pass partition per core.
    let min_b1 = usize::BITS - (total_cores.max(1)).next_power_of_two().leading_zeros() - 1;
    total_bits = total_bits.clamp(min_b1 + 1, 24);
    let b1 = total_bits.div_ceil(2).clamp(min_b1, 12);
    let b2 = (total_bits - b1).clamp(1, 12);
    (b1, b2)
}

/// Concatenate several partitioned slices of the same input into one
/// [`Partitioned`] with the same partition count: partition `j` of the
/// result is the concatenation of partition `j` of every slice. Used by
/// the parallel local pass, where an oversized partition is second-pass
/// partitioned by several threads in slices (in the original this is a
/// shared-histogram scatter with no extra copy; the copy here is a
/// simulator artifact and is not charged).
pub fn concat_partitioned<T: Tuple>(slices: &[Partitioned<T>], parts: usize) -> Partitioned<T> {
    let mut offsets = vec![0usize; parts + 1];
    for s in slices {
        assert_eq!(s.parts(), parts, "slice partition count mismatch");
        for j in 0..parts {
            offsets[j + 1] += s.part(j).len();
        }
    }
    for j in 0..parts {
        offsets[j + 1] += offsets[j];
    }
    let mut data: Vec<T> = vec![T::new(0, 0); offsets[parts]];
    let mut cursor = offsets[..parts].to_vec();
    for s in slices {
        for j in 0..parts {
            let src = s.part(j);
            data[cursor[j]..cursor[j] + src.len()].copy_from_slice(src);
            cursor[j] += src.len();
        }
    }
    Partitioned { data, offsets }
}

/// Target size of one software write-combining staging buffer. One cache
/// line is the paper's choice (§3.1): the line being filled stays in L1
/// and is written out with a single full-line store burst.
const SWWC_LINE_BYTES: usize = 64;

/// Partition counts below which staging overhead exceeds its benefit —
/// with few destinations the plain scatter's write set is already
/// cache-resident, so the extra stage-then-copy is pure cost.
const SWWC_MIN_PARTS: usize = 16;

/// Reusable radix partitioning state: histogram, scatter cursors, and the
/// SWWC staging buffers. Build one per worker and call
/// [`Partitioner::partition`] in a loop; all scratch allocations are
/// retained and reused across calls.
pub struct Partitioner<T> {
    hist: Vec<u64>,
    cursors: Vec<usize>,
    /// `parts * lane` staging tuples (one cache line per partition).
    stage: Vec<T>,
    /// Per-partition staging fill counts (`< lane`, so `u8` suffices).
    fill: Vec<u8>,
}

impl<T: Tuple> Default for Partitioner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Tuple> Partitioner<T> {
    /// Tuples per staging line (≥ 1 even for oversized tuple types).
    #[inline]
    fn lane() -> usize {
        (SWWC_LINE_BYTES / T::SIZE).max(1)
    }

    /// A partitioner with empty scratch buffers; they grow on first use and
    /// are reused afterwards.
    pub fn new() -> Partitioner<T> {
        Partitioner {
            hist: Vec::new(),
            cursors: Vec::new(),
            stage: Vec::new(),
            fill: Vec::new(),
        }
    }

    /// One full partitioning pass: histogram, prefix sum, SWWC scatter.
    pub fn partition(&mut self, input: &[T], lo_bit: u32, bits: u32) -> Partitioned<T> {
        let mut hist = std::mem::take(&mut self.hist);
        histogram_into(input, lo_bit, bits, &mut hist);
        let out = self.scatter_pass(input, lo_bit, bits, &hist);
        self.hist = hist;
        out
    }

    /// Fused pass for callers that already counted: skips the histogram
    /// scan and goes straight to prefix sum + scatter. `hist` must hold
    /// exactly `2^bits` counts summing to `input.len()`.
    pub fn partition_with_hist(
        &mut self,
        input: &[T],
        lo_bit: u32,
        bits: u32,
        hist: &[u64],
    ) -> Partitioned<T> {
        assert_eq!(hist.len(), 1usize << bits, "histogram width mismatch");
        self.scatter_pass(input, lo_bit, bits, hist)
    }

    /// Prefix-sum `hist` into offsets, then scatter `input` into a fresh
    /// output buffer (returned; scratch state stays owned by `self`).
    fn scatter_pass(
        &mut self,
        input: &[T],
        lo_bit: u32,
        bits: u32,
        hist: &[u64],
    ) -> Partitioned<T> {
        let parts = hist.len();
        let mut offsets = Vec::with_capacity(parts + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &h in hist {
            acc += h as usize;
            offsets.push(acc);
        }
        debug_assert_eq!(acc, input.len());
        self.cursors.clear();
        self.cursors.extend_from_slice(&offsets[..parts]);
        // T is small and Copy, so a write-once pass over an uninitialized
        // buffer is not worth the unsafety; zero-fill, overwrite. This is
        // the returned output, not scratch, so it cannot live in `self`.
        // lint: allow-hot-alloc(output buffer moves into the returned Partitioned)
        let mut data: Vec<T> = vec![T::new(0, 0); input.len()];
        if parts >= SWWC_MIN_PARTS && input.len() >= parts * Self::lane() {
            self.scatter_swwc(input, lo_bit, bits, &mut data);
        } else {
            scatter_direct(input, lo_bit, bits, &mut data, &mut self.cursors);
        }
        Partitioned { data, offsets }
    }

    /// §3.1 software write-combining scatter: collect tuples in a
    /// cache-line staging buffer per partition and flush full lines (and
    /// the tail remainders) with bulk copies.
    fn scatter_swwc(&mut self, input: &[T], lo_bit: u32, bits: u32, data: &mut [T]) {
        let parts = 1usize << bits;
        let lane = Self::lane();
        self.stage.clear();
        self.stage.resize(parts * lane, T::new(0, 0));
        self.fill.clear();
        self.fill.resize(parts, 0);
        for t in input {
            let p = partition_of(t.key(), lo_bit, bits);
            let f = self.fill[p] as usize;
            self.stage[p * lane + f] = *t;
            if f + 1 == lane {
                let cur = self.cursors[p];
                data[cur..cur + lane].copy_from_slice(&self.stage[p * lane..(p + 1) * lane]);
                self.cursors[p] = cur + lane;
                self.fill[p] = 0;
            } else {
                self.fill[p] = (f + 1) as u8;
            }
        }
        // Flush partial lines.
        for p in 0..parts {
            let f = self.fill[p] as usize;
            if f > 0 {
                let cur = self.cursors[p];
                data[cur..cur + f].copy_from_slice(&self.stage[p * lane..p * lane + f]);
                self.cursors[p] = cur + f;
            }
        }
    }
}

/// Plain one-tuple-at-a-time scatter, used when the partition fan-out is
/// too small for staging to pay off.
fn scatter_direct<T: Tuple>(
    input: &[T],
    lo_bit: u32,
    bits: u32,
    data: &mut [T],
    cursors: &mut [usize],
) {
    for t in input {
        let p = partition_of(t.key(), lo_bit, bits);
        data[cursors[p]] = *t;
        cursors[p] += 1;
    }
}

/// One full partitioning pass: histogram, prefix sum, scatter. One-shot
/// convenience over [`Partitioner`]; callers that loop should hold a
/// `Partitioner` to reuse its scratch buffers.
pub fn partition<T: Tuple>(input: &[T], lo_bit: u32, bits: u32) -> Partitioned<T> {
    Partitioner::new().partition(input, lo_bit, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsj_workload::Tuple16;

    #[test]
    fn partition_of_extracts_bit_ranges() {
        assert_eq!(partition_of(0b1011_0110, 0, 4), 0b0110);
        assert_eq!(partition_of(0b1011_0110, 4, 4), 0b1011);
        assert_eq!(partition_of(u64::MAX, 60, 4), 0b1111);
    }

    #[test]
    fn choose_radix_bits_respects_constraints() {
        // Paper-scale: 2 x 2048M 16-byte tuples on 80 cores, 32 KiB target.
        let (b1, b2) = choose_radix_bits(4_096_000_000, 16, 80, 32 * 1024);
        assert!(1 << b1 >= 80, "at least one first-pass partition per core");
        assert!(b1 <= 12 && b2 <= 12, "per-pass TLB budget");
        assert!(b1 + b2 >= 16, "enough total partitions for cache residency");
        // Tiny input: minimum viable bits, no overflow.
        let (b1, b2) = choose_radix_bits(10, 16, 4, 32 * 1024);
        assert!(b1 >= 1 && b2 >= 1);
        // Zero tuples must not panic.
        let _ = choose_radix_bits(0, 16, 1, 32 * 1024);
    }

    #[test]
    fn histogram_counts_every_tuple_once() {
        let tuples: Vec<Tuple16> = (0..1000u64).map(|k| Tuple16::new(k, k)).collect();
        let hist = histogram(&tuples, 0, 4);
        assert_eq!(hist.len(), 16);
        assert_eq!(hist.iter().sum::<u64>(), 1000);
        // Dense keys spread evenly over low bits.
        assert!(hist.iter().all(|&h| (62..=63).contains(&h)));
    }

    #[test]
    fn histogram_into_reuses_buffer() {
        let tuples: Vec<Tuple16> = (0..64u64).map(|k| Tuple16::new(k, k)).collect();
        let mut hist = Vec::new();
        histogram_into(&tuples, 0, 3, &mut hist);
        assert_eq!(hist.iter().sum::<u64>(), 64);
        // A second pass over different bits fully overwrites the counts.
        histogram_into(&tuples[..32], 0, 5, &mut hist);
        assert_eq!(hist.len(), 32);
        assert_eq!(hist.iter().sum::<u64>(), 32);
    }

    #[test]
    fn partition_groups_by_radix_and_preserves_multiset() {
        let tuples: Vec<Tuple16> = (0..512u64).map(|i| Tuple16::new(i * 7 + 3, i)).collect();
        let parted = partition(&tuples, 0, 5);
        assert_eq!(parted.parts(), 32);
        assert_eq!(parted.data.len(), tuples.len());
        for p in 0..32 {
            for t in parted.part(p) {
                assert_eq!(partition_of(t.key(), 0, 5), p);
            }
        }
        let mut orig: Vec<u64> = tuples.iter().map(|t| t.rid()).collect();
        let mut got: Vec<u64> = parted.data.iter().map(|t| t.rid()).collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
        // sizes() agrees with the offsets.
        assert_eq!(parted.sizes().sum::<usize>(), tuples.len());
    }

    /// The SWWC scatter and the direct scatter must produce *identical*
    /// output (not merely equivalent): tuple order within a partition is
    /// input order for both.
    #[test]
    fn swwc_scatter_matches_direct_scatter_exactly() {
        let tuples: Vec<Tuple16> = (0..2_000u64)
            .map(|i| Tuple16::new(i.wrapping_mul(0x9E37_79B9).rotate_left(17), i))
            .collect();
        for bits in [5u32, 6, 8] {
            let via_swwc = Partitioner::new().partition(&tuples, 0, bits);
            let mut cursors: Vec<usize> = via_swwc.offsets[..via_swwc.parts()].to_vec();
            let mut direct = vec![Tuple16::new(0, 0); tuples.len()];
            scatter_direct(&tuples, 0, bits, &mut direct, &mut cursors);
            assert!(
                via_swwc.parts() >= SWWC_MIN_PARTS,
                "test must exercise the SWWC path"
            );
            assert_eq!(via_swwc.data, direct, "bits={bits}");
        }
    }

    #[test]
    fn partition_with_hist_skips_recount() {
        let tuples: Vec<Tuple16> = (0..777u64).map(|i| Tuple16::new(i * 31 + 7, i)).collect();
        let mut pt = Partitioner::new();
        let whole = pt.partition(&tuples, 1, 6);
        let hist = histogram(&tuples, 1, 6);
        let fused = pt.partition_with_hist(&tuples, 1, 6, &hist);
        assert_eq!(whole.offsets, fused.offsets);
        assert_eq!(whole.data, fused.data);
    }

    #[test]
    fn partitioner_reuse_across_widths() {
        let tuples: Vec<Tuple16> = (0..600u64).map(|i| Tuple16::new(i * 3 + 1, i)).collect();
        let mut pt = Partitioner::new();
        for bits in [2u32, 7, 3, 9] {
            let parted = pt.partition(&tuples, 0, bits);
            assert_eq!(parted.parts(), 1usize << bits);
            assert_eq!(parted.data.len(), tuples.len());
            for p in 0..parted.parts() {
                for t in parted.part(p) {
                    assert_eq!(partition_of(t.key(), 0, bits), p);
                }
            }
        }
    }

    #[test]
    fn concat_partitioned_equals_single_pass() {
        let tuples: Vec<Tuple16> = (0..3_000u64).map(|i| Tuple16::new(i * 11 + 5, i)).collect();
        let whole = partition(&tuples, 2, 4);
        // Partition three uneven slices independently, then concatenate.
        let slices = [
            partition(&tuples[..700], 2, 4),
            partition(&tuples[700..1900], 2, 4),
            partition(&tuples[1900..], 2, 4),
        ];
        let merged = concat_partitioned(&slices, 16);
        assert_eq!(merged.data.len(), whole.data.len());
        for j in 0..16 {
            let mut a: Vec<u64> = whole.part(j).iter().map(|t| t.rid()).collect();
            let mut b: Vec<u64> = merged.part(j).iter().map(|t| t.rid()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "partition {j}");
        }
    }

    #[test]
    fn concat_partitioned_empty_input() {
        let merged = concat_partitioned::<Tuple16>(&[], 8);
        assert_eq!(merged.parts(), 8);
        assert!(merged.data.is_empty());
    }

    #[test]
    fn two_pass_partitioning_equals_one_wide_pass() {
        // Multi-pass refinement must produce the same partition contents as
        // a single pass over all bits (the radix join's core invariant).
        let tuples: Vec<Tuple16> = (0..4096u64).map(|i| Tuple16::new(i * 13 + 1, i)).collect();
        let one_pass = partition(&tuples, 0, 6);
        let coarse = partition(&tuples, 0, 3);
        for p1 in 0..coarse.parts() {
            let refined = partition(coarse.part(p1), 3, 3);
            for p2 in 0..refined.parts() {
                let wide_idx = (p2 << 3) | p1; // low bits first
                let mut a: Vec<u64> = refined.part(p2).iter().map(|t| t.key()).collect();
                let mut b: Vec<u64> = one_pass.part(wide_idx).iter().map(|t| t.key()).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "coarse {p1} refined {p2}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_partition_is_a_permutation(keys in prop::collection::vec(any::<u64>(), 0..300),
                                           bits in 1u32..8) {
            let tuples: Vec<Tuple16> =
                keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let parted = partition(&tuples, 0, bits);
            prop_assert_eq!(parted.parts(), 1usize << bits);
            prop_assert_eq!(*parted.offsets.last().unwrap(), tuples.len());
            let mut orig: Vec<(u64, u64)> = tuples.iter().map(|t| (t.key(), t.rid())).collect();
            let mut got: Vec<(u64, u64)> = parted.data.iter().map(|t| (t.key(), t.rid())).collect();
            orig.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(orig, got);
            // Each partition holds only its own radix values.
            for p in 0..parted.parts() {
                for t in parted.part(p) {
                    prop_assert_eq!(partition_of(t.key(), 0, bits), p);
                }
            }
        }

        /// Satellite: `choose_radix_bits` invariants over its supported
        /// input envelope — per-pass TLB caps, ≥ one first-pass partition
        /// per core, and final partitions within 2× the cache budget
        /// whenever the 24-bit total cap is not binding.
        #[test]
        fn prop_choose_radix_bits_invariants(
            n_tuples in 1u64..(1u64 << 31),
            tuple_size_log in 3u32..6,    // 8, 16, 32 bytes
            cores in 1usize..1024,
            target_log in 14u32..17,      // 16, 32, 64 KiB
        ) {
            let tuple_size = 1usize << tuple_size_log;
            let target = 1usize << target_log;
            let (b1, b2) = choose_radix_bits(n_tuples, tuple_size, cores, target);
            prop_assert!(b1 >= 1 && b2 >= 1);
            prop_assert!(b1 <= 12 && b2 <= 12, "per-pass TLB budget");
            prop_assert!(b1 + b2 <= 24, "total fan-out cap");
            prop_assert!(
                1usize << b1 >= cores,
                "Eq. 14: at least one first-pass partition per core (b1={b1}, cores={cores})"
            );
            // Cache-budget bound: average final partition ≤ 2× target,
            // unless the 24-bit cap (or the 12/12 per-pass caps) clipped
            // the total — then the function is at its fan-out ceiling.
            let total_bytes = n_tuples * tuple_size as u64;
            let at_cap = b1 + b2 == 24 || (b1 == 12 && b2 == 12);
            if !at_cap {
                let avg_part = total_bytes / (1u64 << (b1 + b2));
                prop_assert!(
                    avg_part <= 2 * target as u64,
                    "avg partition {avg_part} B exceeds 2x target {target} B (b1={b1}, b2={b2})"
                );
            }
        }
    }
}
