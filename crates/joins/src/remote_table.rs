//! The wire format of a published bucket table, read with one-sided
//! RDMA (DESIGN.md §11).
//!
//! After the build phase of a one-sided join, each owner lays its bucket
//! table out in a registered memory region and publishes the handle;
//! probe-side hosts then fetch buckets directly with RDMA READ — no
//! receiver CPU. The layout follows the one-sided hash-table playbook
//! (*Hash Table Design for RDMA*): a fixed-size directory so a reader
//! can address any bucket after one directory fetch, and a seqlock-style
//! version pair around every bucket so a single READ is enough to detect
//! a torn snapshot.
//!
//! ```text
//! region := [nbuckets: u32][entry_size: u32]          ; 8-byte header
//!           nbuckets x [offset: u32][len: u32]        ; directory
//!           nbuckets x bucket                         ; payload
//! bucket := [version: u32][count: u32]                ; seqlock header
//!           count x entry_size bytes                  ; tuple entries
//!           [version: u32]                            ; seqlock trailer
//! ```
//!
//! Offsets are relative to the region start, so `RemoteMr`-relative READs
//! need no base-address arithmetic. The writer protocol is the seqlock
//! discipline: bump *both* version words to an odd value, mutate the
//! entries, then bump both to the next even value. A reader accepts a
//! bucket snapshot iff the header version is even **and** the trailer
//! matches it — one READ spanning the bucket observes either a stable
//! snapshot or a detectable tear ([`TornRead`]), never silent garbage.
//! Bucket selection reuses the exact multiplicative hash of
//! [`crate::BucketTable`], so a published table and a local build agree
//! on every bucket index.

use std::ops::Range;

use rsj_workload::{decode_into, Tuple};

use crate::hash_table::hash;

/// Bytes of the region header (`nbuckets`, `entry_size`).
pub const REMOTE_TABLE_HEADER: usize = 8;
/// Bytes of one directory entry (`offset`, `len`).
pub const REMOTE_DIR_ENTRY: usize = 8;
/// Bytes of one bucket's seqlock header (`version`, `count`).
pub const BUCKET_HEADER: usize = 8;
/// Bytes of one bucket's seqlock trailer (the version copy).
pub const BUCKET_TRAILER: usize = 4;

/// Number of buckets a remote table over `ntuples` tuples uses — the
/// same power-of-two sizing as the local [`crate::BucketTable`], so a
/// probe-side host can compute it from the histogram-announced tuple
/// count without fetching anything.
pub fn remote_nbuckets(ntuples: usize) -> usize {
    ntuples.max(1).next_power_of_two()
}

/// Byte length of the directory prefix (header + entries) of a table
/// with `nbuckets` buckets: the size of the one READ that makes every
/// bucket addressable.
pub fn remote_dir_len(nbuckets: usize) -> usize {
    REMOTE_TABLE_HEADER + nbuckets * REMOTE_DIR_ENTRY
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Serialize a bucket table over `r` into the published-region format
/// (every bucket stable: version 0). The caller registers a region of
/// exactly this length and copies the bytes in.
pub fn encode_remote_table<T: Tuple>(r: &[T]) -> Vec<u8> {
    let nbuckets = remote_nbuckets(r.len());
    let mask = (nbuckets - 1) as u64;
    // Counting sort by bucket, as the local contiguous build does.
    let mut counts = vec![0u32; nbuckets];
    for t in r {
        counts[(hash(t.key()) & mask) as usize] += 1;
    }
    let entry = T::SIZE;
    let mut out = Vec::with_capacity(
        remote_dir_len(nbuckets) + r.len() * entry + nbuckets * (BUCKET_HEADER + BUCKET_TRAILER),
    );
    put_u32(&mut out, nbuckets as u32);
    put_u32(&mut out, entry as u32);
    // Directory: bucket i starts after the directory plus the preceding
    // buckets' full (header + entries + trailer) extents.
    let mut offset = remote_dir_len(nbuckets);
    for &c in &counts {
        let len = BUCKET_HEADER + c as usize * entry + BUCKET_TRAILER;
        put_u32(&mut out, offset as u32);
        put_u32(&mut out, len as u32);
        offset += len;
    }
    // Payload: scatter the tuples bucket by bucket (stable within a
    // bucket: input order, matching the chained table's probe order
    // reversed — order inside a bucket is immaterial to the join result).
    let mut slots: Vec<Vec<&T>> = vec![Vec::new(); nbuckets];
    for t in r {
        slots[(hash(t.key()) & mask) as usize].push(t);
    }
    for (b, slot) in slots.iter().enumerate() {
        put_u32(&mut out, 0); // version: even = stable
        put_u32(&mut out, counts[b]);
        for t in slot {
            t.write_to(&mut out);
        }
        put_u32(&mut out, 0); // trailer
    }
    out
}

/// A decoded directory: the probe side fetches this prefix once per
/// `(owner, partition)`, caches it, and addresses buckets from it.
#[derive(Clone, Debug)]
pub struct RemoteDirectory {
    entry_size: usize,
    /// Per-bucket `(offset, len)` extents, region-relative.
    entries: Vec<(u32, u32)>,
}

impl RemoteDirectory {
    /// Decode a directory from the region prefix (at least
    /// [`remote_dir_len`] bytes for the advertised bucket count).
    pub fn decode(bytes: &[u8]) -> RemoteDirectory {
        assert!(bytes.len() >= REMOTE_TABLE_HEADER, "directory truncated");
        let nbuckets = get_u32(bytes, 0) as usize;
        let entry_size = get_u32(bytes, 4) as usize;
        assert!(
            nbuckets.is_power_of_two() && entry_size > 0,
            "malformed remote-table header"
        );
        assert!(
            bytes.len() >= remote_dir_len(nbuckets),
            "directory truncated"
        );
        let entries = (0..nbuckets)
            .map(|b| {
                let at = REMOTE_TABLE_HEADER + b * REMOTE_DIR_ENTRY;
                (get_u32(bytes, at), get_u32(bytes, at + 4))
            })
            .collect();
        RemoteDirectory {
            entry_size,
            entries,
        }
    }

    /// Number of buckets in the table.
    pub fn nbuckets(&self) -> usize {
        self.entries.len()
    }

    /// Tuple entry size in bytes.
    pub fn entry_size(&self) -> usize {
        self.entry_size
    }

    /// The bucket a key hashes into (identical to the local build).
    pub fn bucket_of(&self, key: u64) -> usize {
        (hash(key) & (self.entries.len() - 1) as u64) as usize
    }

    /// Region-relative byte range of bucket `b` — the READ to issue.
    pub fn bucket_range(&self, b: usize) -> Range<usize> {
        let (off, len) = self.entries[b];
        off as usize..(off + len) as usize
    }

    /// Total region length implied by the directory (end of the last
    /// bucket).
    pub fn region_len(&self) -> usize {
        self.entries
            .iter()
            .map(|&(off, len)| (off + len) as usize)
            .max()
            .unwrap_or(remote_dir_len(self.entries.len()))
    }
}

/// A bucket snapshot failed the seqlock check: the version was odd
/// (writer mid-mutation) or the trailer disagreed with the header (the
/// READ spanned a version bump). The reader retries the READ.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TornRead;

/// Decode one bucket snapshot fetched by RDMA READ. Returns the decoded
/// entries if the snapshot is stable, or [`TornRead`] if the seqlock
/// version pair proves the writer raced the read.
pub fn decode_bucket<T: Tuple>(bytes: &[u8]) -> Result<Vec<T>, TornRead> {
    assert!(
        bytes.len() >= BUCKET_HEADER + BUCKET_TRAILER,
        "bucket snapshot shorter than its framing"
    );
    let version = get_u32(bytes, 0);
    let trailer = get_u32(bytes, bytes.len() - BUCKET_TRAILER);
    if !version.is_multiple_of(2) || version != trailer {
        return Err(TornRead);
    }
    let count = get_u32(bytes, 4) as usize;
    let payload = &bytes[BUCKET_HEADER..bytes.len() - BUCKET_TRAILER];
    assert_eq!(
        payload.len(),
        count * T::SIZE,
        "stable bucket length disagrees with its count"
    );
    let mut out = Vec::with_capacity(count);
    decode_into(payload, &mut out);
    Ok(out)
}

/// Writer-side seqlock entry: bump both version words of bucket
/// `range` (as returned by [`RemoteDirectory::bucket_range`]) to the
/// next odd value. Concurrent READ snapshots of the bucket now decode
/// as [`TornRead`] until [`end_bucket_mutation`].
pub fn begin_bucket_mutation(region: &mut [u8], range: Range<usize>) {
    let v = get_u32(region, range.start);
    assert!(v.is_multiple_of(2), "nested bucket mutation");
    set_versions(region, range, v + 1);
}

/// Writer-side seqlock exit: bump both version words of the bucket to
/// the next even value, making the new contents readable.
pub fn end_bucket_mutation(region: &mut [u8], range: Range<usize>) {
    let v = get_u32(region, range.start);
    assert!(v % 2 == 1, "ending a mutation that never began");
    set_versions(region, range, v + 1);
}

fn set_versions(region: &mut [u8], range: Range<usize>, v: u32) {
    region[range.start..range.start + 4].copy_from_slice(&v.to_le_bytes());
    region[range.end - BUCKET_TRAILER..range.end].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketTable;
    use rsj_workload::Tuple16;

    fn tuples(n: u64) -> Vec<Tuple16> {
        (0..n).map(|i| Tuple16::new(i % 37, i)).collect()
    }

    #[test]
    fn roundtrip_matches_local_build() {
        let r = tuples(200);
        let s = tuples(300);
        let region = encode_remote_table(&r);
        let dir = RemoteDirectory::decode(&region);
        assert_eq!(dir.nbuckets(), remote_nbuckets(r.len()));
        assert_eq!(dir.region_len(), region.len());
        let local = BucketTable::build(&r).probe_all(&s);
        let mut matches = 0u64;
        let mut key_sum = 0u64;
        for probe in &s {
            let b = dir.bucket_of(probe.key());
            let bucket: Vec<Tuple16> =
                decode_bucket(&region[dir.bucket_range(b)]).expect("stable table");
            for entry in bucket {
                if entry.key() == probe.key() {
                    matches += 1;
                    key_sum = key_sum.wrapping_add(probe.key());
                }
            }
        }
        assert_eq!(matches, local.matches);
        assert_eq!(key_sum, local.s_key_sum);
    }

    #[test]
    fn empty_relation_still_publishes_a_directory() {
        let region = encode_remote_table::<Tuple16>(&[]);
        let dir = RemoteDirectory::decode(&region);
        assert_eq!(dir.nbuckets(), 1);
        let bucket: Vec<Tuple16> = decode_bucket(&region[dir.bucket_range(0)]).expect("stable");
        assert!(bucket.is_empty());
    }

    #[test]
    fn torn_snapshot_is_detected_and_clears() {
        let r = tuples(64);
        let mut region = encode_remote_table(&r);
        let dir = RemoteDirectory::decode(&region);
        let b = dir.bucket_of(5);
        let range = dir.bucket_range(b);
        begin_bucket_mutation(&mut region, range.clone());
        assert_eq!(
            decode_bucket::<Tuple16>(&region[range.clone()]),
            Err(TornRead),
            "odd version must read as torn"
        );
        end_bucket_mutation(&mut region, range.clone());
        let again: Vec<Tuple16> = decode_bucket(&region[range.clone()]).expect("stable again");
        assert!(again.iter().all(|t| t.key() == 5));

        // A snapshot spanning a version bump (stale trailer) is torn too.
        let mut stale = region[range.clone()].to_vec();
        let tail = stale.len() - BUCKET_TRAILER;
        stale[tail..].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_bucket::<Tuple16>(&stale), Err(TornRead));
    }
}
