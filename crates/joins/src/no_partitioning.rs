//! The no-partitioning hash join of Blanas et al. [6] (§2.2) — the
//! hardware-oblivious baseline that skips the partitioning stage and
//! builds one shared hash table over the whole inner relation.
//!
//! The paper (following Balkesen et al. [4]) argues that a tuned radix join
//! beats it; this implementation exists so that claim can be reproduced.
//! Because the shared table far exceeds the processor cache, its build and
//! probe rates are derated relative to the cache-resident rates of the
//! radix join — the derating factor is the knob the whole comparison turns
//! on, taken from the ~2x gap reported in [4].

use std::sync::Arc;

use parking_lot::Mutex;
use rsj_cluster::{CostModel, Meter, PhaseTimes};
use rsj_sim::{SimBarrier, SimTime, Simulation};
use rsj_workload::{JoinResult, Tuple};

use crate::BucketTable;

/// Configuration of a no-partitioning join run.
#[derive(Clone, Debug)]
pub struct NoPartitioningConfig {
    /// Worker threads.
    pub cores: usize,
    /// Per-thread rates (cache-resident values).
    pub cost: CostModel,
    /// Factor by which cache/TLB misses on the shared table slow down the
    /// build and probe relative to cache-resident partitions.
    pub cache_miss_derating: f64,
}

impl Default for NoPartitioningConfig {
    fn default() -> Self {
        NoPartitioningConfig {
            cores: 32,
            cost: CostModel::single_machine_server(),
            cache_miss_derating: 2.0,
        }
    }
}

/// Outcome of a no-partitioning join.
#[derive(Clone, Debug)]
pub struct NoPartitioningOutcome {
    /// Verified join summary.
    pub result: JoinResult,
    /// Phase breakdown: only `build_probe` is populated (there is no
    /// partitioning by construction).
    pub phases: PhaseTimes,
}

/// Run the no-partitioning join: a shared chained table over all of `r`,
/// probed in parallel by slices of `s`.
pub fn run_no_partitioning_join<T: Tuple>(
    cfg: NoPartitioningConfig,
    r: Vec<T>,
    s: Vec<T>,
) -> NoPartitioningOutcome {
    assert!(cfg.cores >= 1);
    assert!(cfg.cache_miss_derating >= 1.0);
    let cores = cfg.cores;
    let build_rate = cfg.cost.build_rate / cfg.cache_miss_derating;
    let probe_rate = cfg.cost.probe_rate / cfg.cache_miss_derating;

    struct Shared<T> {
        r: Vec<T>,
        s: Vec<T>,
        barrier: Arc<SimBarrier>,
        table: Mutex<Option<Arc<BucketTable<T>>>>,
        result: Mutex<JoinResult>,
        marks: Mutex<Vec<SimTime>>,
    }
    let sh = Arc::new(Shared {
        r,
        s,
        barrier: SimBarrier::new(cores),
        table: Mutex::new(None),
        result: Mutex::new(JoinResult::default()),
        marks: Mutex::new(Vec::new()),
    });

    let sim = Simulation::new();
    for t in 0..cores {
        let sh = Arc::clone(&sh);
        sim.spawn(format!("np-core-{t}"), move |ctx| {
            let mut meter = Meter::new();
            // Build: in the real algorithm every thread inserts its slice
            // into the shared table with atomic bucket updates. The
            // simulation performs the build once and charges each thread
            // its per-slice share, which yields the identical parallel
            // build time.
            let r_slice_len = sh.r.len().div_ceil(cores);
            let my_r = r_slice_len.min(sh.r.len().saturating_sub(t * r_slice_len));
            meter.charge_bytes(ctx, my_r * T::SIZE, build_rate);
            meter.flush(ctx);
            if sh.barrier.wait(ctx) {
                *sh.table.lock() = Some(Arc::new(BucketTable::build(&sh.r)));
                sh.marks.lock().push(ctx.now());
            }
            ctx.yield_now();
            let table = Arc::clone(sh.table.lock().as_ref().expect("table built"));
            // Probe this thread's slice of s.
            let lo = t * sh.s.len() / cores;
            let hi = (t + 1) * sh.s.len() / cores;
            let my_s = &sh.s[lo..hi];
            let local = table.probe_all(my_s);
            meter.charge_bytes(ctx, my_s.len() * T::SIZE, probe_rate);
            meter.flush(ctx);
            sh.result.lock().merge(local);
            if sh.barrier.wait(ctx) {
                sh.marks.lock().push(ctx.now());
            }
        });
    }
    sim.run();

    let marks = sh.marks.lock().clone();
    let phases = PhaseTimes {
        build_probe: marks[1] - SimTime::ZERO,
        ..PhaseTimes::default()
    };
    let result = *sh.result.lock();
    NoPartitioningOutcome { result, phases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_workload::{generate_inner, generate_outer, naive_hash_join, Skew, Tuple16};

    #[test]
    fn produces_correct_result() {
        let r = generate_inner::<Tuple16>(5_000, 1, 1);
        let (s, oracle) = generate_outer::<Tuple16>(20_000, 5_000, 1, Skew::None, 2);
        let rf: Vec<Tuple16> = r.iter_all().copied().collect();
        let sf: Vec<Tuple16> = s.iter_all().copied().collect();
        let out = run_no_partitioning_join(
            NoPartitioningConfig {
                cores: 4,
                ..Default::default()
            },
            rf,
            sf,
        );
        oracle.verify(&out.result);
    }

    #[test]
    fn handles_duplicates_like_naive_join() {
        let r: Vec<Tuple16> = (0..300u64).map(|i| Tuple16::new(i % 50, i)).collect();
        let s: Vec<Tuple16> = (0..400u64).map(|i| Tuple16::new(i % 70, i)).collect();
        let expect = naive_hash_join(&r, &s);
        let out = run_no_partitioning_join(
            NoPartitioningConfig {
                cores: 3,
                ..Default::default()
            },
            r,
            s,
        );
        assert_eq!(out.result, expect);
    }

    #[test]
    fn derating_slows_it_down() {
        let r = generate_inner::<Tuple16>(50_000, 1, 3);
        let (s, _) = generate_outer::<Tuple16>(50_000, 50_000, 1, Skew::None, 4);
        let rf: Vec<Tuple16> = r.iter_all().copied().collect();
        let sf: Vec<Tuple16> = s.iter_all().copied().collect();
        let fast = run_no_partitioning_join(
            NoPartitioningConfig {
                cores: 4,
                cache_miss_derating: 1.0,
                ..Default::default()
            },
            rf.clone(),
            sf.clone(),
        );
        let slow = run_no_partitioning_join(
            NoPartitioningConfig {
                cores: 4,
                cache_miss_derating: 3.0,
                ..Default::default()
            },
            rf,
            sf,
        );
        let ratio = slow.phases.total().as_secs_f64() / fast.phases.total().as_secs_f64();
        assert!((2.9..=3.1).contains(&ratio), "derating ratio {ratio}");
    }
}
