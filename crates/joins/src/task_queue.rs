//! NUMA-aware task queues — the baseline extension described in §6.1.
//!
//! *"We created multiple task queues, one for each NUMA region. If a buffer
//! is located in region i, it is added to the i-th queue. A thread first
//! checks the task queue belonging to the local NUMA-region and only when
//! there is no local work to be done, will it check other queues."*

use std::collections::VecDeque;

use parking_lot::Mutex;

/// A set of per-region work queues with locality-preferring steal order.
pub struct NumaQueues<Task> {
    queues: Vec<Mutex<VecDeque<Task>>>,
}

impl<Task> NumaQueues<Task> {
    /// Create queues for `regions` NUMA regions (`regions >= 1`).
    pub fn new(regions: usize) -> NumaQueues<Task> {
        assert!(regions >= 1);
        NumaQueues {
            queues: (0..regions).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.queues.len()
    }

    /// Add a task whose data lives in `region`.
    pub fn push(&self, region: usize, task: Task) {
        self.queues[region % self.queues.len()]
            .lock()
            .push_back(task);
    }

    /// Pop a task, preferring `local_region`, then scanning the other
    /// regions round-robin. Returns `None` when every queue is empty.
    pub fn pop(&self, local_region: usize) -> Option<Task> {
        let n = self.queues.len();
        let local = local_region % n;
        for i in 0..n {
            let q = (local + i) % n;
            if let Some(task) = self.queues[q].lock().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Pop the first task satisfying `pred`, preferring `local_region`.
    /// Used by the inter-machine work-sharing extension, which may only
    /// steal self-contained tasks.
    pub fn pop_if<F: Fn(&Task) -> bool>(&self, local_region: usize, pred: F) -> Option<Task> {
        let n = self.queues.len();
        let local = local_region % n;
        for i in 0..n {
            let q = (local + i) % n;
            let mut queue = self.queues[q].lock();
            if let Some(pos) = queue.iter().position(&pred) {
                return queue.remove(pos);
            }
        }
        None
    }

    /// Total queued tasks across all regions.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// Whether all queues are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_work_is_preferred() {
        let q = NumaQueues::new(2);
        q.push(0, "r0-task");
        q.push(1, "r1-task");
        assert_eq!(q.pop(1), Some("r1-task"));
        assert_eq!(q.pop(1), Some("r0-task"), "steals once local is empty");
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn fifo_within_region() {
        let q = NumaQueues::new(1);
        for i in 0..5 {
            q.push(0, i);
        }
        assert_eq!(
            (0..5).map(|_| q.pop(0).unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn region_indices_wrap() {
        let q = NumaQueues::new(3);
        q.push(7, 'x'); // region 7 % 3 == 1
        assert_eq!(q.pop(4), Some('x')); // local 4 % 3 == 1
        assert!(q.is_empty());
    }
}
