//! The single-machine parallel radix join baseline (§6.1, Figure 5a).
//!
//! A faithful reconstruction of the extended algorithm of Balkesen et
//! al. [4] the paper compares against: two partitioning passes, per-NUMA-
//! region task queues, and parallel build-probe over cache-sized
//! partitions. It runs on the simulation kernel so that its phase times are
//! directly comparable to the distributed join's: compute is charged at
//! the [`CostModel`] rates (the multi-core server preset reflects the
//! paper's SIMD/AVX-tuned partitioning passes).

use std::sync::Arc;

use parking_lot::Mutex;
use rsj_cluster::{CostModel, Meter, PhaseTimes};
use rsj_sim::{SimBarrier, SimTime, Simulation};
use rsj_workload::{JoinResult, Tuple};

use crate::radix::{histogram_into, Partitioned, Partitioner};
use crate::task_queue::NumaQueues;
use crate::BucketTable;

/// Configuration of a single-machine join run.
#[derive(Clone, Debug)]
pub struct SingleMachineConfig {
    /// Worker threads (the paper's comparison uses 32 of the server's 40).
    pub cores: usize,
    /// NUMA regions (sockets) for the task queues; the server has 4.
    pub sockets: usize,
    /// Radix bits consumed by the first and second partitioning pass.
    pub radix_bits: (u32, u32),
    /// Per-thread processing rates.
    pub cost: CostModel,
}

impl SingleMachineConfig {
    /// The paper's high-end server setup: 32 cores over 4 sockets.
    pub fn server(radix_bits: (u32, u32)) -> SingleMachineConfig {
        SingleMachineConfig {
            cores: 32,
            sockets: 4,
            radix_bits,
            cost: CostModel::single_machine_server(),
        }
    }
}

/// Result and phase breakdown of a join run.
#[derive(Clone, Debug)]
pub struct SingleJoinOutcome {
    /// Verified join summary.
    pub result: JoinResult,
    /// Per-phase virtual times. For a single machine there is no network,
    /// so `network_partition` holds the *first* (still local) pass.
    pub phases: PhaseTimes,
}

struct Shared<T> {
    cfg: SingleMachineConfig,
    r: Vec<T>,
    s: Vec<T>,
    barrier: Arc<SimBarrier>,
    /// Per-thread first-pass output for both relations.
    pass1: Vec<Mutex<Option<PassOneOutput<T>>>>,
    pass2_tasks: NumaQueues<usize>,
    bp_tasks: NumaQueues<BuildProbeTask<T>>,
    result: Mutex<JoinResult>,
    marks: Mutex<Vec<SimTime>>,
}

/// First-pass output of one thread: `(partitioned R, partitioned S)`.
type PassOneOutput<T> = (Partitioned<T>, Partitioned<T>);
/// A build-probe task: the refined R and S fragments plus the index `j`.
type BuildProbeTask<T> = (Arc<Partitioned<T>>, Arc<Partitioned<T>>, usize);

/// Split `len` items into `n` nearly-equal contiguous ranges.
fn ranges(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    (0..n).map(|i| (i * len / n)..((i + 1) * len / n)).collect()
}

/// Run the single-machine radix join to completion and return the verified
/// result with its phase breakdown.
pub fn run_single_machine_join<T: Tuple>(
    cfg: SingleMachineConfig,
    r: Vec<T>,
    s: Vec<T>,
) -> SingleJoinOutcome {
    assert!(cfg.cores >= 1 && cfg.sockets >= 1);
    let cores = cfg.cores;
    let shared = Arc::new(Shared {
        barrier: SimBarrier::new(cores),
        pass1: (0..cores).map(|_| Mutex::new(None)).collect(),
        pass2_tasks: NumaQueues::new(cfg.sockets),
        bp_tasks: NumaQueues::new(cfg.sockets),
        result: Mutex::new(JoinResult::default()),
        marks: Mutex::new(vec![SimTime::ZERO]),
        cfg,
        r,
        s,
    });

    let sim = Simulation::new();
    for t in 0..cores {
        let sh = Arc::clone(&shared);
        sim.spawn(format!("core-{t}"), move |ctx| worker(ctx, &sh, t));
    }
    sim.run();

    let marks = shared.marks.lock().clone();
    assert_eq!(marks.len(), 5, "expected 4 phase boundaries");
    let phases = PhaseTimes {
        histogram: marks[1] - marks[0],
        network_partition: marks[2] - marks[1],
        local_partition: marks[3] - marks[2],
        build_probe: marks[4] - marks[3],
    };
    let result = *shared.result.lock();
    SingleJoinOutcome { result, phases }
}

fn worker<T: Tuple>(ctx: &rsj_sim::SimCtx, sh: &Shared<T>, t: usize) {
    let cfg = &sh.cfg;
    let (b1, b2) = cfg.radix_bits;
    let socket = t * cfg.sockets / cfg.cores;
    let mut meter = Meter::new();
    let r_range = ranges(sh.r.len(), cfg.cores)[t].clone();
    let s_range = ranges(sh.s.len(), cfg.cores)[t].clone();
    let my_r = &sh.r[r_range];
    let my_s = &sh.s[s_range];
    let mut pt = Partitioner::new();
    let mut r_hist = Vec::new();
    let mut s_hist = Vec::new();

    // --- Phase 1: histogram computation over both relations. The counts
    // feed the first pass's fused scatter, so the scan is not repeated.
    histogram_into(my_r, 0, b1, &mut r_hist);
    histogram_into(my_s, 0, b1, &mut s_hist);
    meter.charge_bytes(
        ctx,
        (my_r.len() + my_s.len()) * T::SIZE,
        cfg.cost.histogram_rate,
    );
    meter.flush(ctx);
    sync(ctx, sh);

    // --- Phase 2: first partitioning pass (thread-private outputs),
    // reusing the phase-1 histograms (fused histogram+scatter).
    let parted_r = pt.partition_with_hist(my_r, 0, b1, &r_hist);
    let parted_s = pt.partition_with_hist(my_s, 0, b1, &s_hist);
    meter.charge_bytes(
        ctx,
        (my_r.len() + my_s.len()) * T::SIZE,
        cfg.cost.partition_rate,
    );
    *sh.pass1[t].lock() = Some((parted_r, parted_s));
    meter.flush(ctx);
    if sync(ctx, sh) {
        // Leader enqueues second-pass tasks; a partition's buffers are
        // spread over all threads, so region assignment is round-robin.
        for p in 0..(1usize << b1) {
            sh.pass2_tasks.push(p % cfg.sockets, p);
        }
    }
    ctx.yield_now(); // let the leader's pushes land before popping

    // --- Phase 3: second (local) partitioning pass.
    let mut r_p: Vec<T> = Vec::new();
    let mut s_p: Vec<T> = Vec::new();
    while let Some(p) = sh.pass2_tasks.pop(socket) {
        // Assemble partition p from every thread's first-pass output
        // (pointer-level assembly in the original; the copy here is a
        // simulator artifact and is not charged).
        r_p.clear();
        s_p.clear();
        for slot in &sh.pass1 {
            let guard = slot.lock();
            let (pr, ps) = guard.as_ref().expect("pass1 output missing");
            r_p.extend_from_slice(pr.part(p));
            s_p.extend_from_slice(ps.part(p));
        }
        meter.charge_bytes(
            ctx,
            (r_p.len() + s_p.len()) * T::SIZE,
            cfg.cost.partition_rate,
        );
        let sub_r = Arc::new(pt.partition(&r_p, b1, b2));
        let sub_s = Arc::new(pt.partition(&s_p, b1, b2));
        for j in 0..(1usize << b2) {
            if !sub_r.part(j).is_empty() || !sub_s.part(j).is_empty() {
                sh.bp_tasks
                    .push(socket, (Arc::clone(&sub_r), Arc::clone(&sub_s), j));
            }
        }
        meter.flush(ctx);
    }
    meter.flush(ctx);
    sync(ctx, sh);

    // --- Phase 4: build-probe over cache-sized partitions. One reusable
    // table per worker: rebuilds recycle the previous build's buffers.
    let mut local = JoinResult::default();
    let mut table = BucketTable::default();
    while let Some((sub_r, sub_s, j)) = sh.bp_tasks.pop(socket) {
        let r_part = sub_r.part(j);
        let s_part = sub_s.part(j);
        table.rebuild(r_part);
        meter.charge_bytes(ctx, r_part.len() * T::SIZE, cfg.cost.build_rate);
        local.merge(table.probe_all(s_part));
        meter.charge_bytes(ctx, s_part.len() * T::SIZE, cfg.cost.probe_rate);
        meter.flush(ctx);
    }
    meter.flush(ctx);
    sh.result.lock().merge(local);
    sync(ctx, sh);
}

/// Barrier + phase-boundary mark. Returns `true` for the leader.
fn sync<T>(ctx: &rsj_sim::SimCtx, sh: &Shared<T>) -> bool {
    let leader = sh.barrier.wait(ctx);
    if leader {
        sh.marks.lock().push(ctx.now());
    }
    leader
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_workload::{generate_inner, generate_outer, naive_hash_join, Skew, Tuple16};

    fn small_cfg(cores: usize) -> SingleMachineConfig {
        SingleMachineConfig {
            cores,
            sockets: 2,
            radix_bits: (4, 3),
            cost: CostModel::single_machine_server(),
        }
    }

    fn flat<T: Tuple>(rel: &rsj_workload::Relation<T>) -> Vec<T> {
        rel.iter_all().copied().collect()
    }

    #[test]
    fn join_result_is_verified_against_oracle() {
        let r = generate_inner::<Tuple16>(10_000, 1, 1);
        let (s, oracle) = generate_outer::<Tuple16>(40_000, 10_000, 1, Skew::None, 2);
        let out = run_single_machine_join(small_cfg(4), flat(&r), flat(&s));
        oracle.verify(&out.result);
    }

    #[test]
    fn matches_naive_join_with_duplicates_and_misses() {
        // Keys outside the inner domain and duplicate inner keys.
        let r: Vec<Tuple16> = (0..500u64).map(|i| Tuple16::new(i % 100, i)).collect();
        let s: Vec<Tuple16> = (0..700u64).map(|i| Tuple16::new(i % 150, i)).collect();
        let expect = naive_hash_join(&r, &s);
        let out = run_single_machine_join(small_cfg(3), r, s);
        assert_eq!(out.result, expect);
    }

    #[test]
    fn phase_times_scale_with_core_count() {
        let r = generate_inner::<Tuple16>(50_000, 1, 3);
        let (s, _) = generate_outer::<Tuple16>(50_000, 50_000, 1, Skew::None, 4);
        let one = run_single_machine_join(small_cfg(1), flat(&r), flat(&s));
        let eight = run_single_machine_join(small_cfg(8), flat(&r), flat(&s));
        let speedup = one.phases.total().as_secs_f64() / eight.phases.total().as_secs_f64();
        assert!(
            (6.0..=8.5).contains(&speedup),
            "8-core speedup was {speedup:.2}"
        );
    }

    #[test]
    fn phase_times_are_linear_in_data_size() {
        let cfg = small_cfg(4);
        let r1 = generate_inner::<Tuple16>(20_000, 1, 5);
        let (s1, _) = generate_outer::<Tuple16>(20_000, 20_000, 1, Skew::None, 6);
        let r2 = generate_inner::<Tuple16>(40_000, 1, 5);
        let (s2, _) = generate_outer::<Tuple16>(40_000, 40_000, 1, Skew::None, 6);
        let small = run_single_machine_join(cfg.clone(), flat(&r1), flat(&s1));
        let large = run_single_machine_join(cfg, flat(&r2), flat(&s2));
        let ratio = large.phases.total().as_secs_f64() / small.phases.total().as_secs_f64();
        assert!(
            (1.9..=2.1).contains(&ratio),
            "doubling data gave ratio {ratio:.3}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let r = generate_inner::<Tuple16>(5_000, 1, 9);
        let (s, _) = generate_outer::<Tuple16>(5_000, 5_000, 1, Skew::Zipf(1.2), 10);
        let a = run_single_machine_join(small_cfg(4), flat(&r), flat(&s));
        let b = run_single_machine_join(small_cfg(4), flat(&r), flat(&s));
        assert_eq!(a.result, b.result);
        assert_eq!(a.phases.total(), b.phases.total());
    }

    #[test]
    fn empty_relations_join_to_zero() {
        let out = run_single_machine_join(small_cfg(2), Vec::<Tuple16>::new(), Vec::new());
        assert_eq!(out.result.matches, 0);
    }
}
