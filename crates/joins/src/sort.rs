//! Sort-merge kernels: the building blocks of the sort-merge join the
//! paper discusses as the main alternative to hash joins (§2.2, Kim et
//! al. [19], Albutiu et al. [2], Balkesen et al. [3]).
//!
//! The paper's §7 notes that its RDMA techniques "can be used to create
//! distributed versions of many database operators like sort-merge
//! joins"; `rsj-operators` does exactly that on top of these kernels.

use rsj_workload::{JoinResult, Tuple};

/// Sort tuples by key (unstable; rids break no ties, duplicates keep
/// arbitrary relative order, which the join result is insensitive to).
pub fn sort_by_key<T: Tuple>(tuples: &mut [T]) {
    tuples.sort_unstable_by_key(|t| t.key());
}

/// Merge-join two key-sorted inputs, accumulating every matching pair.
/// Handles duplicate keys on both sides (cross product per key group).
///
/// # Panics
/// Debug builds assert the inputs are sorted — feeding unsorted data is a
/// logic error upstream, not a recoverable condition.
pub fn merge_join<T: Tuple>(r: &[T], s: &[T]) -> JoinResult {
    debug_assert!(r.windows(2).all(|w| w[0].key() <= w[1].key()), "r unsorted");
    debug_assert!(s.windows(2).all(|w| w[0].key() <= w[1].key()), "s unsorted");
    let mut result = JoinResult::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        let rk = r[i].key();
        let sk = s[j].key();
        match rk.cmp(&sk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Extent of the key group on each side.
                let i_end = i + r[i..].iter().take_while(|t| t.key() == rk).count();
                let j_end = j + s[j..].iter().take_while(|t| t.key() == rk).count();
                for _ in i..i_end {
                    for t in &s[j..j_end] {
                        result.add_match(t.key());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    result
}

/// Merge `runs` of key-sorted tuples into one sorted vector (k-way merge
/// by repeated two-way merging — the cost model charges by bytes moved, so
/// the simple scheme is fine; real MPSM implementations do the same number
/// of passes).
pub fn merge_sorted_runs<T: Tuple>(mut runs: Vec<Vec<T>>) -> Vec<T> {
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().expect("merge loop leaves exactly one run")
}

fn merge_two<T: Tuple>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].key() <= b[j].key() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsj_workload::{naive_hash_join, Tuple16};

    fn tuples(keys: &[u64]) -> Vec<Tuple16> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Tuple16::new(k, i as u64))
            .collect()
    }

    #[test]
    fn merge_join_unique_keys() {
        let mut r = tuples(&[5, 1, 9, 3]);
        let mut s = tuples(&[3, 9, 2, 11]);
        sort_by_key(&mut r);
        sort_by_key(&mut s);
        let res = merge_join(&r, &s);
        assert_eq!(res.matches, 2);
        assert_eq!(res.s_key_sum, 12);
    }

    #[test]
    fn merge_join_duplicates_cross_product() {
        let mut r = tuples(&[7, 7, 7]);
        let mut s = tuples(&[7, 7]);
        sort_by_key(&mut r);
        sort_by_key(&mut s);
        assert_eq!(merge_join(&r, &s).matches, 6);
    }

    #[test]
    fn merge_join_empty_sides() {
        let empty: Vec<Tuple16> = Vec::new();
        let one = tuples(&[1]);
        assert_eq!(merge_join(&empty, &one).matches, 0);
        assert_eq!(merge_join(&one, &empty).matches, 0);
    }

    #[test]
    fn merge_sorted_runs_produces_sorted_output() {
        let runs = vec![
            {
                let mut t = tuples(&[9, 1, 5]);
                sort_by_key(&mut t);
                t
            },
            {
                let mut t = tuples(&[2, 8]);
                sort_by_key(&mut t);
                t
            },
            Vec::new(),
            {
                let mut t = tuples(&[3]);
                sort_by_key(&mut t);
                t
            },
        ];
        let merged = merge_sorted_runs(runs);
        let keys: Vec<u64> = merged.iter().map(|t| t.key()).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 8, 9]);
    }

    proptest! {
        #[test]
        fn prop_merge_join_matches_hash_join(r_keys in prop::collection::vec(0u64..40, 0..120),
                                             s_keys in prop::collection::vec(0u64..40, 0..120)) {
            let mut r = tuples(&r_keys);
            let mut s = tuples(&s_keys);
            let expect = naive_hash_join(&r, &s);
            sort_by_key(&mut r);
            sort_by_key(&mut s);
            prop_assert_eq!(merge_join(&r, &s), expect);
        }

        #[test]
        fn prop_merge_runs_is_a_sorted_permutation(chunks in prop::collection::vec(
            prop::collection::vec(0u64..1000, 0..50), 0..6)) {
            let runs: Vec<Vec<Tuple16>> = chunks.iter().map(|c| {
                let mut t = tuples(c);
                sort_by_key(&mut t);
                t
            }).collect();
            let mut all: Vec<u64> = chunks.concat();
            let merged = merge_sorted_runs(runs);
            let mut got: Vec<u64> = merged.iter().map(|t| t.key()).collect();
            prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
            all.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, all);
        }
    }
}
