//! The bucket-chained hash table of the build-probe phase.
//!
//! Follows the structure of Balkesen et al. [4]: an array of bucket heads
//! plus a `next` chain, both `u32` indices into the tuple array — compact
//! enough that a table over a ~32 KiB partition stays cache-resident
//! (§6.4.3), which is the whole reason the radix join partitions first.

use rsj_workload::{JoinResult, Tuple};

/// Index sentinel for "end of chain".
const NIL: u32 = u32::MAX;

/// A read-only chained hash table built over one partition of the inner
/// relation.
pub struct ChainedTable<T> {
    tuples: Vec<T>,
    buckets: Vec<u32>,
    next: Vec<u32>,
    mask: u64,
}

/// Multiplicative hashing (Knuth). Partition keys share their low radix
/// bits, so bucket selection must mix the *high* bits in.
#[inline]
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

impl<T: Tuple> ChainedTable<T> {
    /// Build a table over `r` (copies the tuples in, as the original does).
    pub fn build(r: &[T]) -> ChainedTable<T> {
        assert!(
            r.len() < NIL as usize,
            "partition too large for u32 chaining"
        );
        let nbuckets = (r.len().max(1)).next_power_of_two();
        let mask = (nbuckets - 1) as u64;
        let mut buckets = vec![NIL; nbuckets];
        let mut next = vec![NIL; r.len()];
        for (i, t) in r.iter().enumerate() {
            let b = (hash(t.key()) & mask) as usize;
            next[i] = buckets[b];
            buckets[b] = i as u32;
        }
        ChainedTable {
            tuples: r.to_vec(),
            buckets,
            next,
            mask,
        }
    }

    /// Number of build-side tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Approximate memory footprint in bytes (tuples + bucket array +
    /// chain), used by the skew handler to decide whether a table still
    /// fits the processor cache.
    pub fn footprint_bytes(&self) -> usize {
        self.tuples.len() * T::SIZE + self.buckets.len() * 4 + self.next.len() * 4
    }

    /// Visit every build tuple matching `key`.
    #[inline]
    pub fn for_each_match(&self, key: u64, mut f: impl FnMut(&T)) {
        let mut i = self.buckets[(hash(key) & self.mask) as usize];
        while i != NIL {
            let t = &self.tuples[i as usize];
            if t.key() == key {
                f(t);
            }
            i = self.next[i as usize];
        }
    }

    /// Probe the table with every tuple of `s`, invoking `f(r, s)` for
    /// every matching pair — the hook result materialization uses (§4.3).
    pub fn for_each_join(&self, s: &[T], mut f: impl FnMut(&T, &T)) {
        for t in s {
            self.for_each_match(t.key(), |r| f(r, t));
        }
    }

    /// Probe the table with every tuple of `s`, accumulating matches.
    pub fn probe_all(&self, s: &[T]) -> JoinResult {
        let mut result = JoinResult::default();
        for t in s {
            self.for_each_match(t.key(), |_r| result.add_match(t.key()));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsj_workload::{naive_hash_join, Tuple16};

    #[test]
    fn probe_finds_unique_matches() {
        let r: Vec<Tuple16> = (1..=100u64).map(|k| Tuple16::new(k, k * 10)).collect();
        let table = ChainedTable::build(&r);
        let s: Vec<Tuple16> = [1u64, 50, 100, 101, 0]
            .iter()
            .map(|&k| Tuple16::new(k, 0))
            .collect();
        let res = table.probe_all(&s);
        assert_eq!(res.matches, 3);
        assert_eq!(res.s_key_sum, 151);
    }

    #[test]
    fn duplicate_build_keys_all_match() {
        let r = vec![
            Tuple16::new(7, 0),
            Tuple16::new(7, 1),
            Tuple16::new(7, 2),
            Tuple16::new(8, 3),
        ];
        let table = ChainedTable::build(&r);
        let res = table.probe_all(&[Tuple16::new(7, 0)]);
        assert_eq!(res.matches, 3);
    }

    #[test]
    fn empty_sides_are_fine() {
        let empty: Vec<Tuple16> = Vec::new();
        let table = ChainedTable::build(&empty);
        assert!(table.is_empty());
        assert_eq!(table.probe_all(&[Tuple16::new(1, 0)]).matches, 0);
        let table = ChainedTable::build(&[Tuple16::new(1, 0)]);
        assert_eq!(table.probe_all(&empty).matches, 0);
    }

    #[test]
    fn for_each_join_yields_every_pair() {
        let r = vec![
            Tuple16::new(1, 10),
            Tuple16::new(1, 11),
            Tuple16::new(2, 12),
        ];
        let s = vec![
            Tuple16::new(1, 20),
            Tuple16::new(2, 21),
            Tuple16::new(3, 22),
        ];
        let table = ChainedTable::build(&r);
        let mut pairs = Vec::new();
        table.for_each_join(&s, |rt, st| pairs.push((rt.rid(), st.rid())));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(10, 20), (11, 20), (12, 21)]);
    }

    #[test]
    fn footprint_is_linear_in_tuples() {
        let r: Vec<Tuple16> = (0..128u64).map(|k| Tuple16::new(k, k)).collect();
        let table = ChainedTable::build(&r);
        assert_eq!(table.footprint_bytes(), 128 * 16 + 128 * 4 + 128 * 4);
    }

    proptest! {
        #[test]
        fn prop_probe_matches_naive_join(r_keys in prop::collection::vec(0u64..64, 0..200),
                                         s_keys in prop::collection::vec(0u64..64, 0..200)) {
            let r: Vec<Tuple16> =
                r_keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let s: Vec<Tuple16> =
                s_keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let expect = naive_hash_join(&r, &s);
            let got = ChainedTable::build(&r).probe_all(&s);
            prop_assert_eq!(got, expect);
        }
    }
}
