//! Hash tables for the build-probe phase.
//!
//! [`ChainedTable`] follows the structure of Balkesen et al. [4]: an array
//! of bucket heads plus a `next` chain, both `u32` indices into the tuple
//! array — compact enough that a table over a ~32 KiB partition stays
//! cache-resident (§6.4.3), which is the whole reason the radix join
//! partitions first.
//!
//! [`BucketTable`] is the wall-clock-fast variant the phases actually use:
//! the same bucket structure, but with each bucket's tuples stored
//! *contiguously* (a counting-sort by bucket at build time), so a probe
//! scans one cache-sequential slice instead of chasing a linked chain, and
//! a rebuild reuses the previous build's allocations. Both report the
//! *chained* layout's footprint so the skew handler's split and steal cost
//! decisions — and therefore every virtual-time result — are unchanged.

use rsj_workload::{JoinResult, Tuple};

/// Index sentinel for "end of chain".
const NIL: u32 = u32::MAX;

/// A read-only chained hash table built over one partition of the inner
/// relation.
pub struct ChainedTable<T> {
    tuples: Vec<T>,
    buckets: Vec<u32>,
    next: Vec<u32>,
    mask: u64,
}

/// Multiplicative hashing (Knuth). Partition keys share their low radix
/// bits, so bucket selection must mix the *high* bits in.
#[inline]
pub(crate) fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

impl<T: Tuple> ChainedTable<T> {
    /// Build a table over `r` (copies the tuples in, as the original does).
    pub fn build(r: &[T]) -> ChainedTable<T> {
        assert!(
            r.len() < NIL as usize,
            "partition too large for u32 chaining"
        );
        let nbuckets = (r.len().max(1)).next_power_of_two();
        let mask = (nbuckets - 1) as u64;
        let mut buckets = vec![NIL; nbuckets];
        let mut next = vec![NIL; r.len()];
        for (i, t) in r.iter().enumerate() {
            let b = (hash(t.key()) & mask) as usize;
            next[i] = buckets[b];
            buckets[b] = i as u32;
        }
        ChainedTable {
            tuples: r.to_vec(),
            buckets,
            next,
            mask,
        }
    }

    /// Number of build-side tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Approximate memory footprint in bytes (tuples + bucket array +
    /// chain), used by the skew handler to decide whether a table still
    /// fits the processor cache.
    pub fn footprint_bytes(&self) -> usize {
        self.tuples.len() * T::SIZE + self.buckets.len() * 4 + self.next.len() * 4
    }

    /// Visit every build tuple matching `key`.
    #[inline]
    pub fn for_each_match(&self, key: u64, mut f: impl FnMut(&T)) {
        let mut i = self.buckets[(hash(key) & self.mask) as usize];
        while i != NIL {
            let t = &self.tuples[i as usize];
            if t.key() == key {
                f(t);
            }
            i = self.next[i as usize];
        }
    }

    /// Probe the table with every tuple of `s`, invoking `f(r, s)` for
    /// every matching pair — the hook result materialization uses (§4.3).
    pub fn for_each_join(&self, s: &[T], mut f: impl FnMut(&T, &T)) {
        for t in s {
            self.for_each_match(t.key(), |r| f(r, t));
        }
    }

    /// Probe the table with every tuple of `s`, accumulating matches.
    pub fn probe_all(&self, s: &[T]) -> JoinResult {
        let mut result = JoinResult::default();
        for t in s {
            self.for_each_match(t.key(), |_r| result.add_match(t.key()));
        }
        result
    }
}

/// A read-only hash table whose buckets are contiguous tuple runs.
///
/// Built by counting-sorting the build side by bucket: `offsets[b]..
/// offsets[b + 1]` delimits bucket `b`'s tuples inside `tuples`. Probes
/// scan that slice linearly — no `next` chain, no per-probe pointer
/// chasing, and no allocation on any probe path. [`BucketTable::rebuild`]
/// reuses the table's buffers, so a worker that builds one table per
/// partition pays no steady-state allocations either.
pub struct BucketTable<T> {
    /// Build tuples grouped by bucket.
    tuples: Vec<T>,
    /// `nbuckets + 1` prefix offsets into `tuples`.
    offsets: Vec<u32>,
    /// Scatter cursors, retained between rebuilds.
    cursors: Vec<u32>,
    mask: u64,
}

impl<T: Tuple> Default for BucketTable<T> {
    fn default() -> Self {
        BucketTable {
            tuples: Vec::new(),
            offsets: vec![0, 0],
            cursors: Vec::new(),
            mask: 0,
        }
    }
}

impl<T: Tuple> BucketTable<T> {
    /// Build a table over `r` (copies the tuples in, as the original does).
    pub fn build(r: &[T]) -> BucketTable<T> {
        let mut table = BucketTable::default();
        table.rebuild(r);
        table
    }

    /// Rebuild the table over `r` in place, reusing all buffers.
    pub fn rebuild(&mut self, r: &[T]) {
        assert!(r.len() < NIL as usize, "partition too large for u32 table");
        let nbuckets = (r.len().max(1)).next_power_of_two();
        self.mask = (nbuckets - 1) as u64;
        self.offsets.clear();
        self.offsets.resize(nbuckets + 1, 0);
        for t in r {
            self.offsets[(hash(t.key()) & self.mask) as usize + 1] += 1;
        }
        for b in 0..nbuckets {
            self.offsets[b + 1] += self.offsets[b];
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets[..nbuckets]);
        self.tuples.clear();
        self.tuples.resize(r.len(), T::new(0, 0));
        for t in r {
            let b = (hash(t.key()) & self.mask) as usize;
            self.tuples[self.cursors[b] as usize] = *t;
            self.cursors[b] += 1;
        }
    }

    /// Number of build-side tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Memory footprint in bytes **of the chained layout this table
    /// replaces** (tuples + bucket heads + `next` chain). The skew
    /// handler's table-split and steal-cost decisions are calibrated
    /// against the paper's chained table; reporting the physical layout's
    /// (smaller) footprint would shift those virtual-time decisions.
    pub fn footprint_bytes(&self) -> usize {
        self.tuples.len() * T::SIZE + (self.offsets.len() - 1) * 4 + self.tuples.len() * 4
    }

    /// Visit every build tuple matching `key`.
    #[inline]
    pub fn for_each_match(&self, key: u64, mut f: impl FnMut(&T)) {
        let b = (hash(key) & self.mask) as usize;
        let (lo, hi) = (self.offsets[b] as usize, self.offsets[b + 1] as usize);
        for t in &self.tuples[lo..hi] {
            if t.key() == key {
                f(t);
            }
        }
    }

    /// Probe the table with every tuple of `s`, invoking `f(r, s)` for
    /// every matching pair — the hook result materialization uses (§4.3).
    pub fn for_each_join(&self, s: &[T], mut f: impl FnMut(&T, &T)) {
        for t in s {
            self.for_each_match(t.key(), |r| f(r, t));
        }
    }

    /// Probe the table with every tuple of `s`, accumulating matches.
    pub fn probe_all(&self, s: &[T]) -> JoinResult {
        let mut result = JoinResult::default();
        for t in s {
            self.for_each_match(t.key(), |_r| result.add_match(t.key()));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsj_workload::{naive_hash_join, Tuple16};

    #[test]
    fn probe_finds_unique_matches() {
        let r: Vec<Tuple16> = (1..=100u64).map(|k| Tuple16::new(k, k * 10)).collect();
        let table = ChainedTable::build(&r);
        let s: Vec<Tuple16> = [1u64, 50, 100, 101, 0]
            .iter()
            .map(|&k| Tuple16::new(k, 0))
            .collect();
        let res = table.probe_all(&s);
        assert_eq!(res.matches, 3);
        assert_eq!(res.s_key_sum, 151);
    }

    #[test]
    fn duplicate_build_keys_all_match() {
        let r = vec![
            Tuple16::new(7, 0),
            Tuple16::new(7, 1),
            Tuple16::new(7, 2),
            Tuple16::new(8, 3),
        ];
        let table = ChainedTable::build(&r);
        let res = table.probe_all(&[Tuple16::new(7, 0)]);
        assert_eq!(res.matches, 3);
    }

    #[test]
    fn empty_sides_are_fine() {
        let empty: Vec<Tuple16> = Vec::new();
        let table = ChainedTable::build(&empty);
        assert!(table.is_empty());
        assert_eq!(table.probe_all(&[Tuple16::new(1, 0)]).matches, 0);
        let table = ChainedTable::build(&[Tuple16::new(1, 0)]);
        assert_eq!(table.probe_all(&empty).matches, 0);
    }

    #[test]
    fn for_each_join_yields_every_pair() {
        let r = vec![
            Tuple16::new(1, 10),
            Tuple16::new(1, 11),
            Tuple16::new(2, 12),
        ];
        let s = vec![
            Tuple16::new(1, 20),
            Tuple16::new(2, 21),
            Tuple16::new(3, 22),
        ];
        let table = ChainedTable::build(&r);
        let mut pairs = Vec::new();
        table.for_each_join(&s, |rt, st| pairs.push((rt.rid(), st.rid())));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(10, 20), (11, 20), (12, 21)]);
    }

    #[test]
    fn footprint_is_linear_in_tuples() {
        let r: Vec<Tuple16> = (0..128u64).map(|k| Tuple16::new(k, k)).collect();
        let table = ChainedTable::build(&r);
        assert_eq!(table.footprint_bytes(), 128 * 16 + 128 * 4 + 128 * 4);
    }

    #[test]
    fn bucket_table_matches_chained_semantics() {
        let r = vec![
            Tuple16::new(7, 0),
            Tuple16::new(7, 1),
            Tuple16::new(8, 3),
            Tuple16::new(7, 2),
        ];
        let s = vec![
            Tuple16::new(7, 10),
            Tuple16::new(8, 11),
            Tuple16::new(9, 12),
        ];
        let chained = ChainedTable::build(&r);
        let bucket = BucketTable::build(&r);
        assert_eq!(bucket.probe_all(&s), chained.probe_all(&s));
        assert_eq!(bucket.len(), chained.len());
        // The footprint is deliberately chained-compatible: the skew
        // handler's virtual-time decisions must not move.
        assert_eq!(bucket.footprint_bytes(), chained.footprint_bytes());
        let mut pairs = Vec::new();
        bucket.for_each_join(&s, |rt, st| pairs.push((rt.rid(), st.rid())));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 10), (1, 10), (2, 10), (3, 11)]);
    }

    #[test]
    fn bucket_table_rebuild_reuses_buffers() {
        let mut table = BucketTable::default();
        assert!(table.is_empty());
        assert_eq!(table.probe_all(&[Tuple16::new(1, 0)]).matches, 0);
        for n in [100u64, 7, 250, 0, 31] {
            let r: Vec<Tuple16> = (0..n).map(|k| Tuple16::new(k * 3, k)).collect();
            table.rebuild(&r);
            assert_eq!(table.len(), n as usize);
            let probe: Vec<Tuple16> = (0..n).map(|k| Tuple16::new(k * 3, 0)).collect();
            assert_eq!(table.probe_all(&probe).matches, n);
        }
    }

    proptest! {
        #[test]
        fn prop_probe_matches_naive_join(r_keys in prop::collection::vec(0u64..64, 0..200),
                                         s_keys in prop::collection::vec(0u64..64, 0..200)) {
            let r: Vec<Tuple16> =
                r_keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let s: Vec<Tuple16> =
                s_keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let expect = naive_hash_join(&r, &s);
            let got = ChainedTable::build(&r).probe_all(&s);
            prop_assert_eq!(got, expect);
        }

        /// The contiguous bucket table is a drop-in for the chained table:
        /// identical match counts, sums, and footprint on arbitrary input.
        #[test]
        fn prop_bucket_table_equals_chained(r_keys in prop::collection::vec(0u64..64, 0..200),
                                            s_keys in prop::collection::vec(0u64..64, 0..200)) {
            let r: Vec<Tuple16> =
                r_keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let s: Vec<Tuple16> =
                s_keys.iter().enumerate().map(|(i, &k)| Tuple16::new(k, i as u64)).collect();
            let chained = ChainedTable::build(&r);
            let bucket = BucketTable::build(&r);
            prop_assert_eq!(bucket.probe_all(&s), chained.probe_all(&s));
            prop_assert_eq!(bucket.footprint_bytes(), chained.footprint_bytes());
        }
    }
}
