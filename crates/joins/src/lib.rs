//! # rsj-joins — single-node join algorithms
//!
//! The multi-core substrate the distributed join builds on (§3.1) and the
//! baselines the paper compares against (§6.1):
//!
//! * [`partition`]/[`histogram`] — the radix partitioning kernels shared by
//!   every join variant in this workspace;
//! * [`ChainedTable`] — the cache-sized bucket-chained hash table of the
//!   build-probe phase;
//! * [`NumaQueues`] — the NUMA-aware task queues of the extended baseline;
//! * [`run_single_machine_join`] — the parallel radix join of Balkesen et
//!   al. [4] with the paper's extensions (Figure 5a's "single" bars);
//! * [`run_no_partitioning_join`] — the hardware-oblivious baseline of
//!   Blanas et al. [6];
//! * [`remote_table`] — the seqlock-versioned bucket-table byte format a
//!   one-sided join publishes for RDMA-READ probing (DESIGN.md §11).

mod hash_table;
mod no_partitioning;
mod radix;
pub mod remote_table;
mod single_machine;
mod sort;
mod task_queue;

pub use hash_table::{BucketTable, ChainedTable};
pub use no_partitioning::{run_no_partitioning_join, NoPartitioningConfig, NoPartitioningOutcome};
pub use remote_table::{
    begin_bucket_mutation, decode_bucket, encode_remote_table, end_bucket_mutation, remote_dir_len,
    remote_nbuckets, RemoteDirectory, TornRead,
};

pub use radix::{
    choose_radix_bits, concat_partitioned, histogram, histogram_into, partition, partition_of,
    Partitioned, Partitioner,
};
pub use single_machine::{run_single_machine_join, SingleJoinOutcome, SingleMachineConfig};
pub use sort::{merge_join, merge_sorted_runs, sort_by_key};
pub use task_queue::NumaQueues;
