//! Eager vs batched settlement equivalence (DESIGN.md §12).
//!
//! Lazy settlement claims that accruing a task's self-advances in the
//! kernel batch (`advance_batched` + `settle_point` at interactions) is
//! observationally equivalent to dispatching every chunk eagerly: the
//! committed clock at every interaction point is identical, and so is
//! every dispatch-visible ordering. These property tests drive random
//! multi-task schedules — random charge bursts separated by token-ring
//! interactions — under both settlement styles and require identical
//! interaction logs and final virtual times.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use rsj_sim::{SimChannel, SimDuration, Simulation};

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Settle {
    /// Every chunk is its own `ctx.advance` dispatch.
    Eager,
    /// Chunks accrue via `ctx.advance_batched`; one `settle_point` per
    /// interaction.
    Batched,
}

/// Interaction log entry: (task, round, committed nanos at the
/// interaction). Appended in dispatch order, so comparing the whole
/// vector compares the dispatch-visible ordering, not just the clocks.
type Log = Arc<Mutex<Vec<(usize, usize, u64)>>>;

/// Drive `threads` tasks for `rounds` token-ring laps. Between
/// interactions each task performs a pseudo-random burst of self-advances
/// (the charge pattern), then logs its position and passes the token.
fn run_ring(
    mode: Settle,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> (u64, Vec<(usize, usize, u64)>) {
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let sim = Simulation::new();
    let chans: Vec<_> = (0..threads).map(|_| SimChannel::new()).collect();
    for t in 0..threads {
        let inbox = Arc::clone(&chans[t]);
        let outbox = Arc::clone(&chans[(t + 1) % threads]);
        let log = Arc::clone(&log);
        sim.spawn(format!("w{t}"), move |ctx| {
            let mut x = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
            for r in 0..rounds {
                // A burst of 1..=8 charges of 1..=5000 ns each.
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let burst = 1 + (x >> 33) % 8;
                for _ in 0..burst {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let d = SimDuration::from_nanos(1 + (x >> 33) % 5000);
                    match mode {
                        Settle::Eager => ctx.advance(d),
                        Settle::Batched => ctx.advance_batched(d),
                    }
                }
                if mode == Settle::Batched {
                    ctx.settle_point();
                }
                log.lock().push((t, r, ctx.now().as_nanos()));
                // Token ring: task 0 seeds the lap, everyone else relays.
                if t == 0 {
                    outbox.send(ctx, r as u64);
                    assert_eq!(inbox.recv(ctx), Some(r as u64));
                } else {
                    assert_eq!(inbox.recv(ctx), Some(r as u64));
                    outbox.send(ctx, r as u64);
                }
            }
            if t == 0 {
                // Let relays drain their final recv.
                for c in [&inbox, &outbox] {
                    c.close(ctx);
                }
            }
        });
    }
    let end = sim.run().as_nanos();
    let entries = log.lock().clone();
    (end, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multi-task charge/interaction schedules: identical final
    /// virtual time and identical dispatch-visible interaction order
    /// under eager and batched settlement.
    #[test]
    fn prop_batched_settlement_is_observationally_eager(
        threads in 2usize..6,
        rounds in 1usize..20,
        seed in any::<u64>(),
    ) {
        let eager = run_ring(Settle::Eager, threads, rounds, seed);
        let batched = run_ring(Settle::Batched, threads, rounds, seed);
        prop_assert_eq!(eager.0, batched.0, "final virtual times diverge");
        prop_assert_eq!(eager.1, batched.1, "interaction orderings diverge");
    }

    /// A single task with no peers: the batched path must still commit
    /// exactly the sum of its chunks.
    #[test]
    fn prop_solo_batched_total_is_exact(steps in 1usize..200, seed in any::<u64>()) {
        let sim = Simulation::new();
        sim.spawn("solo", move |ctx| {
            let mut x = seed | 1;
            let mut sum = 0u64;
            for i in 0..steps {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let d = 1 + (x >> 33) % 10_000;
                ctx.advance_batched(SimDuration::from_nanos(d));
                sum += d;
                if i % 7 == 6 {
                    ctx.settle_point();
                }
                assert_eq!(ctx.now().as_nanos(), sum);
            }
        });
        // Task exit settles any remaining batch; the run ends at the sum.
        let end = sim.run();
        prop_assert!(end.as_nanos() > 0);
    }
}
