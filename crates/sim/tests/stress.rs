//! Stress and property tests for the discrete-event kernel: randomized
//! workloads must preserve the kernel's core guarantees — exact time
//! accounting, determinism, FIFO channels, and barrier atomicity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use rsj_sim::{SimBarrier, SimChannel, SimDuration, SimSemaphore, Simulation};

/// A thread that never parks ends exactly at the sum of its advances.
#[test]
fn time_accounting_is_exact_under_contention() {
    let sim = Simulation::new();
    let total = Arc::new(AtomicU64::new(0));
    for t in 0..12u64 {
        let total = Arc::clone(&total);
        sim.spawn(format!("w{t}"), move |ctx| {
            let mut sum = 0u64;
            let mut x = t + 1;
            for _ in 0..5_000 {
                // Deterministic pseudo-random step.
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let d = 1 + (x >> 33) % 100;
                ctx.advance(SimDuration::from_nanos(d));
                sum += d;
            }
            assert_eq!(ctx.now().as_nanos(), sum);
            total.fetch_add(sum, Ordering::SeqCst);
        });
    }
    let end = sim.run();
    // The simulation ends at the maximum per-thread time, which is at
    // most the largest sum; sanity-check it is in a plausible range.
    assert!(end.as_nanos() > 5_000);
    assert!(total.load(Ordering::SeqCst) > 12 * 5_000);
}

/// Producer/consumer pipelines across channels preserve order and counts.
#[test]
fn channel_pipeline_preserves_order() {
    let sim = Simulation::new();
    let stage1 = SimChannel::new();
    let stage2 = SimChannel::new();
    let sink: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let stage1 = Arc::clone(&stage1);
        sim.spawn("producer", move |ctx| {
            for i in 0..500u64 {
                ctx.advance(SimDuration::from_nanos(7 + i % 13));
                stage1.send(ctx, i);
            }
            stage1.close(ctx);
        });
    }
    {
        let stage1 = Arc::clone(&stage1);
        let stage2 = Arc::clone(&stage2);
        sim.spawn("transform", move |ctx| {
            while let Some(v) = stage1.recv(ctx) {
                ctx.advance(SimDuration::from_nanos(11));
                stage2.send(ctx, v * 2);
            }
            stage2.close(ctx);
        });
    }
    {
        let stage2 = Arc::clone(&stage2);
        let sink = Arc::clone(&sink);
        sim.spawn("consumer", move |ctx| {
            while let Some(v) = stage2.recv(ctx) {
                sink.lock().push(v);
            }
        });
    }
    sim.run();
    let got = sink.lock();
    assert_eq!(got.len(), 500);
    assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved");
    assert_eq!(got[499], 998);
}

/// Barriers never tear: between two barrier generations, every thread
/// observes the same shared epoch.
#[test]
fn barrier_epochs_are_atomic() {
    let sim = Simulation::new();
    let n = 6;
    let barrier = SimBarrier::new(n);
    let epoch = Arc::new(AtomicU64::new(0));
    for t in 0..n as u64 {
        let barrier = Arc::clone(&barrier);
        let epoch = Arc::clone(&epoch);
        sim.spawn(format!("w{t}"), move |ctx| {
            for round in 0..50u64 {
                ctx.advance(SimDuration::from_nanos(1 + (t * 31 + round * 17) % 41));
                let seen = epoch.load(Ordering::SeqCst);
                assert_eq!(seen, round, "thread {t} saw stale epoch");
                if barrier.wait(ctx) {
                    epoch.fetch_add(1, Ordering::SeqCst);
                }
                barrier.wait(ctx); // publication barrier
            }
        });
    }
    sim.run();
    assert_eq!(epoch.load(Ordering::SeqCst), 50);
}

/// Semaphore-protected critical sections never overlap in virtual time.
#[test]
fn semaphore_mutual_exclusion_in_virtual_time() {
    let sim = Simulation::new();
    let sem = SimSemaphore::new(1);
    let spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for t in 0..8u64 {
        let sem = Arc::clone(&sem);
        let spans = Arc::clone(&spans);
        sim.spawn(format!("w{t}"), move |ctx| {
            for i in 0..10u64 {
                ctx.advance(SimDuration::from_nanos((t * 7 + i * 3) % 29 + 1));
                sem.acquire(ctx);
                let start = ctx.now().as_nanos();
                ctx.advance(SimDuration::from_nanos(50));
                let end = ctx.now().as_nanos();
                spans.lock().push((start, end));
                sem.release(ctx);
            }
        });
    }
    sim.run();
    let mut spans = spans.lock().clone();
    spans.sort_unstable();
    assert_eq!(spans.len(), 80);
    for w in spans.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "critical sections overlap: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

/// Build one mixed workload — meter-style advance bursts, barrier rounds,
/// a channel pipeline, and a semaphore — on either the fast-path kernel or
/// the heap-only reference kernel, and return `(end, dispatch trace)`.
///
/// The workload deliberately hits every scheduling shape the fast path
/// touches: long runs of uncontended advances (self-continuation +
/// coalescing), same-instant ties (near-bucket FIFO order), park/unpark
/// (barrier and channel wakes), and zero-length yields.
#[cfg(feature = "ref-kernel")]
fn traced_mixed_workload(reference: bool, seed: u64) -> (u64, Vec<rsj_sim::Dispatch>) {
    let sim = if reference {
        Simulation::new_reference()
    } else {
        Simulation::new()
    };
    sim.record_trace();
    let n = 5usize;
    let barrier = SimBarrier::new(n);
    let sem = SimSemaphore::new(2);
    let ch = SimChannel::new();
    for t in 0..n as u64 {
        let barrier = Arc::clone(&barrier);
        let sem = Arc::clone(&sem);
        let ch = Arc::clone(&ch);
        sim.spawn(format!("w{t}"), move |ctx| {
            let mut x = seed ^ (t + 1);
            for round in 0..8u64 {
                // Burst of fine-grained charges (the meter-flush shape that
                // dominates the experiment sweeps).
                for _ in 0..40 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ctx.advance(SimDuration::from_nanos((x >> 33) % 23));
                }
                sem.acquire(ctx);
                ctx.advance(SimDuration::from_nanos(50));
                sem.release(ctx);
                if t == 0 {
                    ch.send(ctx, round);
                }
                barrier.wait(ctx);
            }
            if t == 0 {
                ch.close(ctx);
            }
        });
    }
    {
        let ch = Arc::clone(&ch);
        sim.spawn("drain", move |ctx| while ch.recv(ctx).is_some() {});
    }
    let (end, trace) = sim.run_traced();
    (end.as_nanos(), trace)
}

/// The self-continuation fast path, charge coalescing, and the two-level
/// near/far queue must be pure wall-clock optimisations: the `(time, seq,
/// task)` dispatch trace has to be bit-for-bit identical to the heap-only
/// reference scheduler's.
///
/// The `ref-kernel` gate is always on in test builds — rsj-sim's self
/// dev-dependency enables it — so this runs under both the workspace-wide
/// `cargo test` and a bare `cargo test -p rsj-sim`.
#[cfg(feature = "ref-kernel")]
#[test]
fn fast_path_dispatch_trace_equals_reference() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED_CAFE_F00D] {
        let fast = traced_mixed_workload(false, seed);
        let reference = traced_mixed_workload(true, seed);
        assert_eq!(
            fast.0, reference.0,
            "final virtual time diverged (seed {seed})"
        );
        assert_eq!(
            fast.1.len(),
            reference.1.len(),
            "dispatch counts diverged (seed {seed})"
        );
        assert_eq!(
            fast.1, reference.1,
            "dispatch traces diverged (seed {seed})"
        );
        assert!(fast.1.len() > 1_000, "workload too small to be meaningful");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random mix of thread counts and advance patterns is
    /// deterministic: two runs produce identical event traces.
    #[test]
    fn prop_runs_are_deterministic(threads in 1usize..8, steps in 1usize..60, seed in any::<u64>()) {
        fn run(threads: usize, steps: usize, seed: u64) -> (u64, Vec<u64>) {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let sim = Simulation::new();
            for t in 0..threads as u64 {
                let trace = Arc::clone(&trace);
                sim.spawn(format!("w{t}"), move |ctx| {
                    let mut x = seed ^ (t + 1);
                    for _ in 0..steps {
                        x = x.wrapping_mul(0x5DEECE66D).wrapping_add(11);
                        ctx.advance(SimDuration::from_nanos(x % 97 + 1));
                        trace.lock().push(ctx.now().as_nanos() ^ (t << 48));
                    }
                });
            }
            let end = sim.run();
            let t = trace.lock().clone();
            (end.as_nanos(), t)
        }
        let a = run(threads, steps, seed);
        let b = run(threads, steps, seed);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Channel send/recv counts always balance, whatever the interleaving.
    #[test]
    fn prop_channel_conservation(producers in 1usize..5, items in 0usize..200) {
        let sim = Simulation::new();
        let ch = SimChannel::new();
        let received = Arc::new(AtomicU64::new(0));
        let live_producers = Arc::new(AtomicU64::new(producers as u64));
        for p in 0..producers {
            let ch = Arc::clone(&ch);
            let live = Arc::clone(&live_producers);
            sim.spawn(format!("p{p}"), move |ctx| {
                for i in 0..items {
                    ctx.advance(SimDuration::from_nanos((p * 13 + i * 7) as u64 % 31 + 1));
                    ch.send(ctx, (p, i));
                }
                if live.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ch.close(ctx);
                }
            });
        }
        {
            let ch = Arc::clone(&ch);
            let received = Arc::clone(&received);
            sim.spawn("consumer", move |ctx| {
                while ch.recv(ctx).is_some() {
                    received.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        sim.run();
        prop_assert_eq!(received.load(Ordering::SeqCst), (producers * items) as u64);
    }
}
