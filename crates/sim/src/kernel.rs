//! The discrete-event kernel: a cooperative scheduler for simulated threads.
//!
//! Every simulated entity (a worker core, a NIC engine, a coordinator) is a
//! real OS thread, but **exactly one of them runs at any moment**. A thread
//! runs until it reaches a *yield point* — [`SimCtx::advance`] (charge
//! virtual time), [`SimCtx::park`] (block until unparked), or thread exit —
//! at which point the kernel dispatches the runnable thread with the
//! smallest `(wake_time, sequence_number)` key. Virtual time jumps directly
//! from event to event; no wall-clock time is ever consulted, so a
//! simulation is bit-for-bit deterministic across runs and machines.
//!
//! This design lets the join algorithm be written as ordinary blocking Rust
//! code (loops, channels, barriers) while its *timing* comes entirely from
//! the cost model — which is exactly the substitution DESIGN.md calls for:
//! real data, virtual time.

use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifies a simulated thread within one [`Simulation`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub(crate) usize);

/// Scheduler entry: wake `task` at `time`; ties broken by insertion order
/// (`seq`), which makes dispatch deterministic.
#[derive(PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    task: usize,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum TaskState {
    /// Has an event in the queue (or is about to get one).
    Runnable,
    /// Currently executing on its OS thread.
    Running,
    /// Waiting for an explicit unpark.
    Blocked,
    Finished,
}

/// Per-thread wake gate. The OS thread sleeps on `cv` until `open` is set
/// by the kernel; `abort` tells it to unwind instead of resuming.
struct Gate {
    lock: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    open: bool,
    abort: bool,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            lock: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        })
    }

    fn open(&self, abort: bool) {
        let mut g = self.lock.lock();
        g.open = true;
        g.abort |= abort;
        self.cv.notify_one();
    }

    /// Blocks the OS thread until the kernel grants execution. Returns
    /// `true` if the simulation is aborting and the thread must unwind.
    fn wait(&self) -> bool {
        let mut g = self.lock.lock();
        while !g.open {
            self.cv.wait(&mut g);
        }
        g.open = false;
        g.abort
    }
}

struct Slot {
    name: String,
    gate: Arc<Gate>,
    state: TaskState,
    /// A pending unpark delivered while the task was not blocked; consumed
    /// by the next `park`.
    permit: bool,
}

struct State {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event>,
    slots: Vec<Slot>,
    /// Number of spawned-but-unfinished tasks.
    live: usize,
    /// First panic message observed; once set, the simulation aborts.
    failure: Option<String>,
    done: bool,
}

pub(crate) struct Kernel {
    state: Mutex<State>,
    /// Signalled when the simulation completes or fails.
    finished_cv: Condvar,
}

/// Sentinel panic payload used to unwind simulated threads when the
/// simulation aborts (after another thread panicked or a deadlock was
/// detected). Not an error in the aborting thread itself.
struct SimAbort;

impl Kernel {
    fn new() -> Arc<Kernel> {
        Arc::new(Kernel {
            state: Mutex::new(State {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                slots: Vec::new(),
                live: 0,
                failure: None,
                done: false,
            }),
            finished_cv: Condvar::new(),
        })
    }

    fn push_event(state: &mut State, time: SimTime, task: usize) {
        let seq = state.seq;
        state.seq += 1;
        state.queue.push(Event { time, seq, task });
    }

    /// Picks and wakes the next runnable task. Must be called with the state
    /// lock held, by a thread that is itself no longer `Running`.
    fn dispatch(&self, state: &mut State) {
        loop {
            match state.queue.pop() {
                Some(ev) => {
                    let slot = &mut state.slots[ev.task];
                    match slot.state {
                        TaskState::Runnable => {
                            debug_assert!(ev.time >= state.now, "time went backwards");
                            state.now = ev.time;
                            slot.state = TaskState::Running;
                            let abort = state.failure.is_some();
                            slot.gate.open(abort);
                            return;
                        }
                        // A stale event (task was already woken by a newer
                        // one, or finished): skip it.
                        _ => continue,
                    }
                }
                None => {
                    if state.live == 0 {
                        state.done = true;
                        self.finished_cv.notify_all();
                    } else if state.failure.is_none() {
                        // Live tasks but nothing runnable: deadlock.
                        let blocked: Vec<&str> = state
                            .slots
                            .iter()
                            .filter(|s| s.state == TaskState::Blocked)
                            .map(|s| s.name.as_str())
                            .collect();
                        state.failure = Some(format!(
                            "simulation deadlock at {}: {} task(s) blocked with no pending \
                             events: {blocked:?}",
                            state.now, state.live
                        ));
                        self.abort_all(state);
                    } else {
                        self.abort_all(state);
                    }
                    return;
                }
            }
        }
    }

    /// Wake every blocked task with the abort flag so the simulation can
    /// unwind after a failure.
    fn abort_all(&self, state: &mut State) {
        for slot in &mut state.slots {
            if slot.state == TaskState::Blocked {
                slot.state = TaskState::Runnable;
                slot.gate.open(true);
            }
        }
        if state.live == 0 {
            state.done = true;
            self.finished_cv.notify_all();
        }
    }

    /// Yield point: transition `tid` out of Running, dispatch a successor,
    /// then sleep until re-granted. Panics with [`SimAbort`] if the
    /// simulation is aborting.
    fn yield_and_wait(&self, tid: usize, new_state: TaskState, wake_at: Option<SimTime>) {
        let gate = {
            let mut st = self.state.lock();
            debug_assert_eq!(st.slots[tid].state, TaskState::Running);
            st.slots[tid].state = new_state;
            if let Some(t) = wake_at {
                Self::push_event(&mut st, t, tid);
            }
            let gate = Arc::clone(&st.slots[tid].gate);
            self.dispatch(&mut st);
            gate
        };
        if gate.wait() {
            panic::panic_any(SimAbort);
        }
    }
}

/// A handle to the kernel held by each simulated thread. All virtual-time
/// operations go through this context.
///
/// # Locking discipline
///
/// Simulated code may use real mutexes for shared state (they are never
/// contended in real time — only one simulated thread runs at once), but a
/// guard must **never** be held across a yield point ([`SimCtx::advance`],
/// [`SimCtx::park`], or anything that calls them, such as a meter flush or
/// a barrier). The kernel would dispatch another thread, which can then
/// block on the held lock *outside* the kernel's knowledge: every OS
/// thread ends up waiting on a futex and the deadlock detector never runs,
/// because the kernel still believes the lock holder's successor is
/// runnable. Scope guards tightly.
///
/// A `SimCtx` identifies *this* thread to the scheduler; it is deliberately
/// not `Clone` — pass it by reference into helpers, and use
/// [`SimCtx::spawn`] to create new simulated threads (each gets its own
/// context).
pub struct SimCtx {
    kernel: Arc<Kernel>,
    tid: usize,
}

impl SimCtx {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    /// This thread's id, usable as an unpark target from other threads.
    pub fn id(&self) -> TaskId {
        TaskId(self.tid)
    }

    /// Charge `d` of virtual time to this thread: the thread resumes once
    /// the virtual clock reaches `now + d`, after all earlier events.
    pub fn advance(&self, d: SimDuration) {
        let wake = self.now() + d;
        self.kernel
            .yield_and_wait(self.tid, TaskState::Runnable, Some(wake));
    }

    /// Yield without consuming virtual time, letting other threads scheduled
    /// at the current instant run first (in deterministic seq order).
    pub fn yield_now(&self) {
        self.advance(SimDuration::ZERO);
    }

    /// Sleep until the virtual clock reaches `t` (no-op if already past).
    pub fn sleep_until(&self, t: SimTime) {
        let now = self.now();
        if t > now {
            self.advance(t - now);
        } else {
            self.yield_now();
        }
    }

    /// Block until another thread calls [`SimCtx::unpark`] on this thread's
    /// [`TaskId`]. If an unpark was already delivered (a *permit*), returns
    /// immediately. Virtual time may advance arbitrarily while parked.
    pub fn park(&self) {
        {
            let mut st = self.kernel.state.lock();
            if st.slots[self.tid].permit {
                st.slots[self.tid].permit = false;
                return;
            }
        }
        self.kernel
            .yield_and_wait(self.tid, TaskState::Blocked, None);
    }

    /// Make `target` runnable at the current virtual time. If `target` is
    /// not parked, a permit is stored and its next [`SimCtx::park`] returns
    /// immediately.
    pub fn unpark(&self, target: TaskId) {
        let mut st = self.kernel.state.lock();
        let slot = &mut st.slots[target.0];
        match slot.state {
            TaskState::Blocked => {
                slot.state = TaskState::Runnable;
                let now = st.now;
                Kernel::push_event(&mut st, now, target.0);
            }
            TaskState::Finished => {}
            _ => slot.permit = true,
        }
    }

    /// Spawn a new simulated thread. It becomes runnable at the current
    /// virtual time and starts executing once dispatched.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> TaskId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_task(&self.kernel, name.into(), f)
    }
}

fn spawn_task<F>(kernel: &Arc<Kernel>, name: String, f: F) -> TaskId
where
    F: FnOnce(&SimCtx) + Send + 'static,
{
    let gate = Gate::new();
    let tid = {
        let mut st = kernel.state.lock();
        assert!(!st.done, "cannot spawn into a finished simulation");
        let tid = st.slots.len();
        st.slots.push(Slot {
            name,
            gate: Arc::clone(&gate),
            state: TaskState::Runnable,
            permit: false,
        });
        st.live += 1;
        let now = st.now;
        Kernel::push_event(&mut st, now, tid);
        tid
    };

    let kernel2 = Arc::clone(kernel);
    std::thread::Builder::new()
        .name(format!("sim-{tid}"))
        .stack_size(512 * 1024)
        .spawn(move || {
            // Wait until first dispatched.
            if gate.wait() {
                finish_task(&kernel2, tid, None);
                return;
            }
            let ctx = SimCtx {
                kernel: Arc::clone(&kernel2),
                tid,
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
            let failure = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<SimAbort>().is_some() {
                        None // induced unwind, original failure already recorded
                    } else {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Some(msg)
                    }
                }
            };
            finish_task(&kernel2, tid, failure);
        })
        .expect("failed to spawn OS thread for simulated task");
    TaskId(tid)
}

fn finish_task(kernel: &Arc<Kernel>, tid: usize, failure: Option<String>) {
    let mut st = kernel.state.lock();
    st.slots[tid].state = TaskState::Finished;
    st.live -= 1;
    if let Some(msg) = failure {
        if st.failure.is_none() {
            let name = st.slots[tid].name.clone();
            st.failure = Some(format!("simulated thread '{name}' panicked: {msg}"));
        }
        kernel.abort_all(&mut st);
    }
    kernel.dispatch(&mut st);
}

/// A complete simulation run: spawn root threads, then [`Simulation::run`]
/// to completion of all simulated threads.
///
/// ```
/// use rsj_sim::{Simulation, SimDuration};
///
/// let sim = Simulation::new();
/// sim.spawn("worker", |ctx| {
///     ctx.advance(SimDuration::from_millis(5));
///     assert_eq!(ctx.now().as_nanos(), 5_000_000);
/// });
/// let end = sim.run();
/// assert_eq!(end.as_nanos(), 5_000_000);
/// ```
pub struct Simulation {
    kernel: Arc<Kernel>,
}

impl Simulation {
    /// Create an empty simulation with the clock at zero.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Simulation {
        Simulation {
            kernel: Kernel::new(),
        }
    }

    /// Spawn a root simulated thread (runnable at t = 0).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> TaskId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_task(&self.kernel, name.into(), f)
    }

    /// Run the simulation until every simulated thread has finished.
    /// Returns the final virtual time.
    ///
    /// # Panics
    /// Propagates the first panic raised inside any simulated thread, and
    /// panics on deadlock (live threads with no pending events).
    pub fn run(self) -> SimTime {
        {
            let mut st = self.kernel.state.lock();
            if !st.done && st.live > 0 {
                self.kernel.dispatch(&mut st);
            } else {
                st.done = true;
            }
            while !st.done {
                self.kernel.finished_cv.wait(&mut st);
            }
            if let Some(msg) = st.failure.take() {
                drop(st);
                panic!("{msg}");
            }
            st.now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn clock_advances_per_thread() {
        let sim = Simulation::new();
        sim.spawn("a", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.advance(SimDuration::from_millis(10));
            assert_eq!(ctx.now().as_nanos(), 10_000_000);
        });
        assert_eq!(sim.run().as_nanos(), 10_000_000);
    }

    #[test]
    fn threads_interleave_in_time_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::new();
        for (name, delay) in [("late", 20u64), ("early", 5), ("mid", 12)] {
            let order = Arc::clone(&order);
            sim.spawn(name, move |ctx| {
                ctx.advance(SimDuration::from_millis(delay));
                order.lock().push(name);
            });
        }
        sim.run();
        assert_eq!(*order.lock(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn equal_times_dispatch_in_spawn_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::new();
        for i in 0..5usize {
            let order = Arc::clone(&order);
            sim.spawn(format!("t{i}"), move |ctx| {
                ctx.advance(SimDuration::from_millis(1));
                order.lock().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn park_unpark_handshake() {
        let sim = Simulation::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let waiter = sim.spawn("waiter", move |ctx| {
            ctx.park();
            hits2.fetch_add(1, Ordering::SeqCst);
            assert_eq!(ctx.now(), SimTime::from_nanos(3_000_000));
        });
        sim.spawn("waker", move |ctx| {
            ctx.advance(SimDuration::from_millis(3));
            ctx.unpark(waiter);
        });
        sim.run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unpark_before_park_leaves_permit() {
        let sim = Simulation::new();
        let target = sim.spawn("sleeper", |ctx| {
            // Sleep past the unpark, then park: the permit must be consumed
            // without blocking (otherwise: deadlock).
            ctx.advance(SimDuration::from_millis(10));
            ctx.park();
        });
        sim.spawn("early-waker", move |ctx| {
            ctx.advance(SimDuration::from_millis(1));
            ctx.unpark(target);
        });
        sim.run();
    }

    #[test]
    fn nested_spawn_runs() {
        let sim = Simulation::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        sim.spawn("parent", move |ctx| {
            let hits3 = Arc::clone(&hits2);
            ctx.spawn("child", move |ctx| {
                ctx.advance(SimDuration::from_micros(7));
                hits3.fetch_add(1, Ordering::SeqCst);
            });
            ctx.advance(SimDuration::from_millis(1));
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        let end = sim.run();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(end.as_nanos(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let sim = Simulation::new();
        sim.spawn("stuck", |ctx| ctx.park());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_propagates_to_run() {
        let sim = Simulation::new();
        sim.spawn("bomber", |ctx| {
            ctx.advance(SimDuration::from_millis(1));
            panic!("boom");
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_aborts_blocked_peers() {
        let sim = Simulation::new();
        sim.spawn("forever", |ctx| ctx.park());
        sim.spawn("bomber", |ctx| {
            ctx.advance(SimDuration::from_millis(1));
            panic!("boom");
        });
        sim.run();
    }

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let sim = Simulation::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn determinism_across_runs() {
        fn one_run() -> Vec<(u64, usize)> {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let sim = Simulation::new();
            for i in 0..8usize {
                let trace = Arc::clone(&trace);
                sim.spawn(format!("w{i}"), move |ctx| {
                    for step in 0..20u64 {
                        ctx.advance(SimDuration::from_nanos((i as u64 * 37 + step * 13) % 97));
                        trace.lock().push((ctx.now().as_nanos(), i));
                    }
                });
            }
            sim.run();
            let t = trace.lock().clone();
            t
        }
        assert_eq!(one_run(), one_run());
    }
}
