//! The discrete-event kernel: a cooperative scheduler for simulated threads.
//!
//! Every simulated entity (a worker core, a NIC engine, a coordinator) is a
//! real OS thread, but **exactly one of them runs at any moment**. A thread
//! runs until it reaches a *yield point* — [`SimCtx::advance`] (charge
//! virtual time), [`SimCtx::park`] (block until unparked), or thread exit —
//! at which point the kernel dispatches the runnable thread with the
//! smallest `(wake_time, task, sequence_number)` key. Ties on the clock are
//! broken by the *target task id*, not by global insertion order: which
//! task runs first at a shared instant is a pure function of the instant
//! and the task set, never of how many scheduler dispatches happened to
//! precede it. (Seq still orders multiple events of one task, and makes the
//! key total.) That invariance is what lets two dispatch patterns that
//! commit the same per-task clocks — e.g. eager vs batched settlement —
//! produce the identical execution. Virtual time jumps directly from event
//! to event; no wall-clock time is ever consulted, so a simulation is
//! bit-for-bit deterministic across runs and machines.
//!
//! This design lets the join algorithm be written as ordinary blocking Rust
//! code (loops, channels, barriers) while its *timing* comes entirely from
//! the cost model — which is exactly the substitution DESIGN.md calls for:
//! real data, virtual time.
//!
//! ## Wall-clock hot path
//!
//! The `(time, task, seq)` total order is the determinism contract; *how
//! fast the host walks that order* is a pure implementation concern. Three
//! techniques keep the walk cheap (DESIGN.md §"Kernel fast path"):
//!
//! 1. **Self-continuation fast path.** When an `advance()` would push an
//!    event that precedes everything queued, the reference scheduler would
//!    push it, dispatch it straight back to the same task, and pay a full
//!    OS park/unpark round-trip for a no-op handoff. The fast path detects
//!    this (`(wake, task) < next queued key`), bumps the clock, allocates
//!    the same sequence number, and returns inline — zero queue operations,
//!    zero context switches. Consecutive charges between interaction points
//!    therefore coalesce: none of them touches the queue at all.
//! 2. **Two-level event queue.** Events at the *current* instant go into a
//!    small near-heap, only strictly-future events pay the main binary-heap
//!    `O(log n)` over the full horizon. Unpark wakes and same-instant
//!    yields — the bulk of barrier and channel traffic — stay in the small
//!    structure.
//! 3. **Futex-style gates.** The per-task wake gate is an atomic flag plus
//!    `std::thread::park`/`unpark` instead of a mutex + condvar, roughly
//!    3× cheaper per handoff on Linux (one futex wake, no lock convoy).
//!    The winner's gate is opened *after* the scheduler lock is released so
//!    the woken thread never immediately blocks on that lock.
//! 4. **Batched self-advance.** [`SimCtx::advance_batched`] accrues virtual
//!    time into a per-task `pending` cell without touching the scheduler at
//!    all — not even the state lock. This is sound because the kernel is a
//!    *cooperative* scheduler: while this task holds the run token, no
//!    other task executes, so the event queue is frozen except for events
//!    this task itself pushes. The accrued time is this task's lookahead —
//!    provably unobservable until the task next performs a kernel-visible
//!    action (advance, park, unpark, spawn, exit), at which point
//!    [`SimCtx::settle_point`] commits the whole batch as one `advance`
//!    carrying the same total duration the unbatched calls would have, so
//!    every committed `(time, seq)` key at an interaction is unchanged. A
//!    seq-derived epoch assertion (debug builds) machine-checks the
//!    frozen-queue invariant on every settle.
//!
//! A heap-only reference scheduler (feature `ref-kernel`, also compiled for
//! this crate's own tests) retains the original push-everything/pop-min
//! structure; the trace-equivalence tests assert both produce the identical
//! `(time, seq, task)` dispatch trace under the shared comparator.

use std::cell::Cell;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifies a simulated thread within one [`Simulation`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub(crate) usize);

/// One entry of a recorded dispatch trace: the kernel granted `task` the
/// right to run at virtual time `time`; `seq` is the event's insertion
/// number (the last component of the `(time, task, seq)` key). The
/// sequence of these entries *is* the scheduling decision record — two
/// kernel implementations are equivalent iff they produce identical traces.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Dispatch {
    /// Virtual time of the grant.
    pub time: SimTime,
    /// The event's global sequence number (insertion order; final
    /// component of the dispatch key).
    pub seq: u64,
    /// The task that was granted execution.
    pub task: TaskId,
}

/// Scheduler entry: wake `task` at `time`; clock ties are broken by the
/// target task id so the dispatch order at a shared instant never depends
/// on how many events were inserted before (see module docs), with `seq`
/// (insertion order) only ordering multiple events of one task. A plain
/// 24-byte value — queues store it inline, so "allocating" an event is a
/// bump of a preallocated buffer, never a heap allocation per event.
#[derive(Copy, Clone, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    task: usize,
}

impl Event {
    #[inline]
    fn key(&self) -> (SimTime, usize, u64) {
        (self.time, self.task, self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum TaskState {
    /// Has an event in the queue (or is about to get one).
    Runnable,
    /// Currently executing on its OS thread.
    Running,
    /// Waiting for an explicit unpark.
    Blocked,
    Finished,
}

const GATE_OPEN: u8 = 0b01;
const GATE_ABORT: u8 = 0b10;

/// Per-task wake gate: an atomic flag word plus the task's OS thread
/// handle. Opening the gate is a release store + `Thread::unpark` (a single
/// futex wake when the target is parked); waiting is an acquire swap in a
/// `std::thread::park` loop. This replaces the original mutex + condvar
/// gate, which cost ~3× more per handoff (lock, notify, futex wake, lock
/// reacquisition on the waiter).
struct Gate {
    /// `GATE_OPEN` grants execution; `GATE_ABORT` tells the waiter to
    /// unwind instead of resuming. Consumed atomically by `wait`.
    flags: AtomicU8,
    /// The OS thread to unpark. Set exactly once, before the task can ever
    /// be dispatched (the spawner holds the run token until `spawn`
    /// returns, and the handle is stored inside `spawn`).
    thread: OnceLock<std::thread::Thread>,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            flags: AtomicU8::new(0),
            thread: OnceLock::new(),
        })
    }

    /// Grant execution to the gated task (with `abort` set, it unwinds).
    /// Must be called after the gate's thread handle was registered.
    fn open(&self, abort: bool) {
        let bits = GATE_OPEN | if abort { GATE_ABORT } else { 0 };
        self.flags.fetch_or(bits, Ordering::Release);
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }

    /// Blocks the OS thread until the kernel grants execution. Returns
    /// `true` if the simulation is aborting and the thread must unwind.
    /// Robust against spurious `park` returns and stale unpark tokens: the
    /// flag word, not the token, carries the grant.
    fn wait(&self) -> bool {
        loop {
            let f = self.flags.swap(0, Ordering::Acquire);
            if f & GATE_OPEN != 0 {
                return f & GATE_ABORT != 0;
            }
            std::thread::park();
        }
    }
}

struct Slot {
    name: String,
    gate: Arc<Gate>,
    state: TaskState,
    /// A pending unpark delivered while the task was not blocked; consumed
    /// by the next `park`.
    permit: bool,
}

/// A dispatch decision handed out of the scheduler: open this gate (with
/// the abort flag) *after* releasing the state lock, so the woken thread
/// does not immediately contend on it.
struct Grant {
    gate: Arc<Gate>,
    abort: bool,
}

struct State {
    now: SimTime,
    seq: u64,
    /// Events scheduled at exactly `now` at push time. A small min-heap:
    /// with task-id tie-breaking, same-instant events do not pop in
    /// insertion order, but the heap stays tiny (it drains before `now`
    /// advances), so pops cost `O(log instant-width)` instead of the main
    /// heap's `O(log horizon)`.
    near: BinaryHeap<Event>,
    /// Events scheduled strictly after `now` at push time. Min-heap by
    /// `(time, task, seq)`.
    far: BinaryHeap<Event>,
    slots: Vec<Slot>,
    /// Number of spawned-but-unfinished tasks.
    live: usize,
    /// First panic message observed; once set, the simulation aborts.
    failure: Option<String>,
    done: bool,
    /// When present, every dispatch decision (including inline
    /// self-continuations) is appended here.
    trace: Option<Vec<Dispatch>>,
    /// Reference mode: heap-only queue, no self-continuation fast path —
    /// the original scheduler structure, kept as the equivalence oracle.
    #[cfg(any(test, feature = "ref-kernel"))]
    reference: bool,
}

impl State {
    #[inline]
    fn is_reference(&self) -> bool {
        #[cfg(any(test, feature = "ref-kernel"))]
        {
            self.reference
        }
        #[cfg(not(any(test, feature = "ref-kernel")))]
        {
            false
        }
    }

    /// Peek the minimum `(time, task, seq)` key across both queue levels.
    #[inline]
    fn peek_key(&self) -> Option<(SimTime, usize, u64)> {
        let near = self.near.peek().map(Event::key);
        let far = self.far.peek().map(Event::key);
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pop the event with the minimum `(time, task, seq)` key.
    #[inline]
    fn pop_min(&mut self) -> Option<Event> {
        match (self.near.peek(), self.far.peek()) {
            (Some(a), Some(b)) => {
                if a.key() <= b.key() {
                    self.near.pop()
                } else {
                    self.far.pop()
                }
            }
            (Some(_), None) => self.near.pop(),
            (None, _) => self.far.pop(),
        }
    }

    #[inline]
    fn record(&mut self, time: SimTime, seq: u64, task: usize) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push(Dispatch {
                time,
                seq,
                task: TaskId(task),
            });
        }
    }
}

pub(crate) struct Kernel {
    state: Mutex<State>,
    /// Signalled when the simulation completes or fails. (Cold path only;
    /// per-task wakes use the futex-style [`Gate`].)
    finished_cv: Condvar,
}

/// Sentinel panic payload used to unwind simulated threads when the
/// simulation aborts (after another thread panicked or a deadlock was
/// detected). Not an error in the aborting thread itself.
struct SimAbort;

impl Kernel {
    fn new(reference: bool) -> Arc<Kernel> {
        #[cfg(not(any(test, feature = "ref-kernel")))]
        let _ = reference;
        Arc::new(Kernel {
            state: Mutex::new(State {
                now: SimTime::ZERO,
                seq: 0,
                // Preallocated and retained for the life of the run: event
                // pushes never allocate once these warm up.
                near: BinaryHeap::with_capacity(256),
                far: BinaryHeap::with_capacity(1024),
                slots: Vec::with_capacity(64),
                live: 0,
                failure: None,
                done: false,
                trace: None,
                #[cfg(any(test, feature = "ref-kernel"))]
                reference,
            }),
            finished_cv: Condvar::new(),
        })
    }

    fn push_event(state: &mut State, time: SimTime, task: usize) {
        let seq = state.seq;
        state.seq += 1;
        if !state.is_reference() && time == state.now {
            state.near.push(Event { time, seq, task });
        } else {
            debug_assert!(state.is_reference() || time > state.now);
            state.far.push(Event { time, seq, task });
        }
    }

    /// Picks the next runnable task and marks it Running. Must be called
    /// with the state lock held, by a thread that is itself no longer
    /// `Running`. The returned grant's gate must be opened by the caller
    /// *after* releasing the lock.
    #[must_use]
    fn dispatch(&self, state: &mut State) -> Option<Grant> {
        loop {
            match state.pop_min() {
                Some(ev) => {
                    let slot = &mut state.slots[ev.task];
                    match slot.state {
                        TaskState::Runnable => {
                            debug_assert!(ev.time >= state.now, "time went backwards");
                            state.now = ev.time;
                            slot.state = TaskState::Running;
                            let gate = Arc::clone(&slot.gate);
                            state.record(ev.time, ev.seq, ev.task);
                            let abort = state.failure.is_some();
                            return Some(Grant { gate, abort });
                        }
                        // A stale event (task was already woken by a newer
                        // one, or finished): skip it.
                        _ => continue,
                    }
                }
                None => {
                    if state.live == 0 {
                        state.done = true;
                        self.finished_cv.notify_all();
                    } else if state.failure.is_none() {
                        // Live tasks but nothing runnable: deadlock.
                        let blocked: Vec<&str> = state
                            .slots
                            .iter()
                            .filter(|s| s.state == TaskState::Blocked)
                            .map(|s| s.name.as_str())
                            .collect();
                        state.failure = Some(format!(
                            "simulation deadlock at {}: {} task(s) blocked with no pending \
                             events: {blocked:?}",
                            state.now, state.live
                        ));
                        self.abort_all(state);
                    } else {
                        self.abort_all(state);
                    }
                    return None;
                }
            }
        }
    }

    /// Wake every blocked task with the abort flag so the simulation can
    /// unwind after a failure. (Cold path: gates are opened under the lock;
    /// the woken threads serialize on `finish_task` anyway.)
    fn abort_all(&self, state: &mut State) {
        for slot in &mut state.slots {
            if slot.state == TaskState::Blocked {
                slot.state = TaskState::Runnable;
                slot.gate.open(true);
            }
        }
        if state.live == 0 {
            state.done = true;
            self.finished_cv.notify_all();
        }
    }

    /// Charge `d` of virtual time to task `tid`.
    ///
    /// Fast path: if the task's wake event would precede everything queued
    /// — `(wake, tid)` strictly below the minimum `(time, task)` — then
    /// pushing it and dispatching would hand control straight back to this
    /// same thread. Skip the queue, the state transition, and the gate
    /// round-trip entirely: allocate the seq, bump the clock, keep running.
    /// The recorded trace entry is identical to what the reference
    /// scheduler produces, because the reference would pop this very event
    /// next with the same `(time, seq)`.
    fn advance(&self, tid: usize, d: SimDuration) {
        let wake;
        {
            let mut st = self.state.lock();
            debug_assert_eq!(st.slots[tid].state, TaskState::Running);
            wake = st.now + d;
            if !st.is_reference() && st.failure.is_none() {
                let wins = match st.peek_key() {
                    // A clock tie is broken by task id; a tie on both (a
                    // stale event of this very task) falls through to the
                    // slow path, whose pop order handles it.
                    Some((t, task, _)) => (wake, tid) < (t, task),
                    None => true,
                };
                if wins {
                    let seq = st.seq;
                    st.seq += 1;
                    st.now = wake;
                    st.record(wake, seq, tid);
                    return;
                }
            }
        }
        self.yield_and_wait(tid, TaskState::Runnable, Some(wake));
    }

    /// Yield point: transition `tid` out of Running, dispatch a successor,
    /// then sleep until re-granted. Panics with [`SimAbort`] if the
    /// simulation is aborting.
    fn yield_and_wait(&self, tid: usize, new_state: TaskState, wake_at: Option<SimTime>) {
        let (gate, grant) = {
            let mut st = self.state.lock();
            debug_assert_eq!(st.slots[tid].state, TaskState::Running);
            st.slots[tid].state = new_state;
            if let Some(t) = wake_at {
                Self::push_event(&mut st, t, tid);
            }
            let gate = Arc::clone(&st.slots[tid].gate);
            let grant = self.dispatch(&mut st);
            (gate, grant)
        };
        if let Some(g) = grant {
            g.gate.open(g.abort);
        }
        if gate.wait() {
            panic::panic_any(SimAbort);
        }
    }
}

/// A handle to the kernel held by each simulated thread. All virtual-time
/// operations go through this context.
///
/// # Locking discipline
///
/// Simulated code may use real mutexes for shared state (they are never
/// contended in real time — only one simulated thread runs at once), but a
/// guard must **never** be held across a yield point ([`SimCtx::advance`],
/// [`SimCtx::park`], or anything that calls them, such as a meter flush or
/// a barrier). The kernel would dispatch another thread, which can then
/// block on the held lock *outside* the kernel's knowledge: every OS
/// thread ends up waiting on a futex and the deadlock detector never runs,
/// because the kernel still believes the lock holder's successor is
/// runnable. Scope guards tightly.
///
/// A `SimCtx` identifies *this* thread to the scheduler; it is deliberately
/// not `Clone` — pass it by reference into helpers, and use
/// [`SimCtx::spawn`] to create new simulated threads (each gets its own
/// context).
pub struct SimCtx {
    kernel: Arc<Kernel>,
    tid: usize,
    /// Virtual nanoseconds accrued by [`SimCtx::advance_batched`] and not
    /// yet committed to the scheduler. Observable only through this
    /// context: [`SimCtx::now`] adds it, and every kernel-visible action
    /// settles or carries it, so no other task can ever see a clock that
    /// lags the accrual.
    pending: Cell<u64>,
    /// Debug-build epoch check: `(scheduler seq at accrual start, events
    /// this task itself pushed since)`. While `pending` is nonzero the
    /// event queue must be frozen apart from our own pushes — the
    /// invariant that makes batching sound — and `settle_point` asserts it.
    #[cfg(debug_assertions)]
    accrual_epoch: Cell<(u64, u64)>,
}

impl SimCtx {
    fn new(kernel: Arc<Kernel>, tid: usize) -> SimCtx {
        SimCtx {
            kernel,
            tid,
            pending: Cell::new(0),
            #[cfg(debug_assertions)]
            accrual_epoch: Cell::new((0, 0)),
        }
    }

    /// The current virtual time (committed clock plus this task's
    /// uncommitted batched accrual).
    pub fn now(&self) -> SimTime {
        let committed = self.kernel.state.lock().now;
        committed + SimDuration::from_nanos(self.pending.get())
    }

    /// This thread's id, usable as an unpark target from other threads.
    pub fn id(&self) -> TaskId {
        TaskId(self.tid)
    }

    /// Charge `d` of virtual time to this thread: the thread resumes once
    /// the virtual clock reaches `now + d`, after all earlier events. Any
    /// batched accrual is folded into the same single advance.
    pub fn advance(&self, d: SimDuration) {
        let total = d + SimDuration::from_nanos(self.pending.take());
        self.kernel.advance(self.tid, total);
    }

    /// Accrue `d` of virtual time *without* a scheduler dispatch: the time
    /// is added to this task's pending batch and becomes part of the next
    /// kernel-visible action ([`SimCtx::advance`], [`SimCtx::settle_point`],
    /// [`SimCtx::park`], or task exit). Pure per-task cell arithmetic — no
    /// lock, no queue operation, no context switch.
    ///
    /// The batch is this task's *lookahead*: because exactly one simulated
    /// thread runs at a time, no other task can be dispatched (or push an
    /// event) while the batch accrues, so deferring the commit cannot
    /// change which events exist when the commit finally happens — the
    /// committed `(time, seq)` of the eventual advance is exactly what an
    /// unbatched advance of the same total would have produced.
    #[inline]
    pub fn advance_batched(&self, d: SimDuration) {
        #[cfg(debug_assertions)]
        if self.pending.get() == 0 && d.as_nanos() > 0 {
            let seq = self.kernel.state.lock().seq;
            self.accrual_epoch.set((seq, 0));
        }
        self.pending.set(self.pending.get() + d.as_nanos());
    }

    /// Commit any batched accrual to the scheduler as one advance. No-op
    /// when nothing is pending. This is the settle hook interaction sites
    /// call (directly or via `advance`/`park`) before an action whose
    /// virtual-time position other tasks can observe.
    pub fn settle_point(&self) {
        let p = self.pending.take();
        if p > 0 {
            #[cfg(debug_assertions)]
            {
                let (start_seq, self_pushes) = self.accrual_epoch.get();
                let seq = self.kernel.state.lock().seq;
                debug_assert_eq!(
                    seq,
                    start_seq + self_pushes,
                    "event queue changed under a batched accrual: another task ran while \
                     this one held the run token"
                );
            }
            self.kernel.advance(self.tid, SimDuration::from_nanos(p));
        }
    }

    /// Debug-epoch bookkeeping: this task pushed an event while a batch
    /// was accruing (its own unpark/spawn — the only legal queue mutations
    /// during accrual).
    #[cfg(debug_assertions)]
    fn note_self_push(&self) {
        if self.pending.get() > 0 {
            let (s, p) = self.accrual_epoch.get();
            self.accrual_epoch.set((s, p + 1));
        }
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn note_self_push(&self) {}

    /// Yield without consuming virtual time, letting other threads scheduled
    /// at the current instant run first (in deterministic task order).
    pub fn yield_now(&self) {
        self.advance(SimDuration::ZERO);
    }

    /// Sleep until the virtual clock reaches `t` (no-op if already past).
    pub fn sleep_until(&self, t: SimTime) {
        let now = self.now();
        if t > now {
            self.advance(t - now);
        } else {
            self.yield_now();
        }
    }

    /// Block until another thread calls [`SimCtx::unpark`] on this thread's
    /// [`TaskId`]. If an unpark was already delivered (a *permit*), returns
    /// immediately. Virtual time may advance arbitrarily while parked.
    ///
    /// Parking settles any batched accrual first: the park's virtual-time
    /// position is observable (it decides which unpark wakes us and at what
    /// clock we resume), so the task's clock must be fully committed.
    pub fn park(&self) {
        self.settle_point();
        {
            let mut st = self.kernel.state.lock();
            if st.slots[self.tid].permit {
                st.slots[self.tid].permit = false;
                return;
            }
        }
        self.kernel
            .yield_and_wait(self.tid, TaskState::Blocked, None);
    }

    /// Make `target` runnable at the caller's current virtual time (its
    /// committed clock plus any batched accrual). If `target` is not
    /// parked, a permit is stored and its next [`SimCtx::park`] returns
    /// immediately.
    ///
    /// This deliberately does *not* settle the caller: unpark is routinely
    /// called under short-lived real mutexes (channel/barrier internals),
    /// and settling could dispatch another task that then blocks on that
    /// mutex outside the kernel's knowledge. Instead the wake event is
    /// pushed at the caller's effective time — a future event from the
    /// scheduler's point of view — which carries the identical timestamp a
    /// pre-settled caller would have produced.
    pub fn unpark(&self, target: TaskId) {
        let mut st = self.kernel.state.lock();
        let slot = &mut st.slots[target.0];
        match slot.state {
            TaskState::Blocked => {
                slot.state = TaskState::Runnable;
                let at = st.now + SimDuration::from_nanos(self.pending.get());
                Kernel::push_event(&mut st, at, target.0);
                drop(st);
                self.note_self_push();
            }
            TaskState::Finished => {}
            _ => slot.permit = true,
        }
    }

    /// Spawn a new simulated thread. It becomes runnable at the caller's
    /// current virtual time (committed clock plus batched accrual) and
    /// starts executing once dispatched.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> TaskId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        let id = spawn_task(
            &self.kernel,
            name.into(),
            f,
            SimDuration::from_nanos(self.pending.get()),
        );
        self.note_self_push();
        id
    }
}

fn spawn_task<F>(kernel: &Arc<Kernel>, name: String, f: F, offset: SimDuration) -> TaskId
where
    F: FnOnce(&SimCtx) + Send + 'static,
{
    let gate = Gate::new();
    let tid = {
        let mut st = kernel.state.lock();
        assert!(!st.done, "cannot spawn into a finished simulation");
        let tid = st.slots.len();
        st.slots.push(Slot {
            name,
            gate: Arc::clone(&gate),
            state: TaskState::Runnable,
            permit: false,
        });
        st.live += 1;
        let at = st.now + offset;
        Kernel::push_event(&mut st, at, tid);
        tid
    };

    let kernel2 = Arc::clone(kernel);
    let gate2 = Arc::clone(&gate);
    let handle = std::thread::Builder::new()
        .name(format!("sim-{tid}"))
        .stack_size(512 * 1024)
        .spawn(move || {
            // Wait until first dispatched.
            if gate2.wait() {
                finish_task(&kernel2, tid, None);
                return;
            }
            let ctx = SimCtx::new(Arc::clone(&kernel2), tid);
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                f(&ctx);
                // Commit any batched accrual left at exit so the final
                // virtual time matches an unbatched run of the same work.
                ctx.settle_point();
            }));
            let failure = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<SimAbort>().is_some() {
                        None // induced unwind, original failure already recorded
                    } else {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Some(msg)
                    }
                }
            };
            finish_task(&kernel2, tid, failure);
        })
        .expect("failed to spawn OS thread for simulated task");
    // Registered before the spawner reaches its next yield point, i.e.
    // before any dispatch could try to open this gate.
    gate.thread
        .set(handle.thread().clone())
        .expect("gate thread handle set twice");
    TaskId(tid)
}

fn finish_task(kernel: &Arc<Kernel>, tid: usize, failure: Option<String>) {
    let grant = {
        let mut st = kernel.state.lock();
        st.slots[tid].state = TaskState::Finished;
        st.live -= 1;
        if let Some(msg) = failure {
            if st.failure.is_none() {
                let name = st.slots[tid].name.clone();
                st.failure = Some(format!("simulated thread '{name}' panicked: {msg}"));
            }
            kernel.abort_all(&mut st);
        }
        kernel.dispatch(&mut st)
    };
    if let Some(g) = grant {
        g.gate.open(g.abort);
    }
}

/// A complete simulation run: spawn root threads, then [`Simulation::run`]
/// to completion of all simulated threads.
///
/// ```
/// use rsj_sim::{Simulation, SimDuration};
///
/// let sim = Simulation::new();
/// sim.spawn("worker", |ctx| {
///     ctx.advance(SimDuration::from_millis(5));
///     assert_eq!(ctx.now().as_nanos(), 5_000_000);
/// });
/// let end = sim.run();
/// assert_eq!(end.as_nanos(), 5_000_000);
/// ```
pub struct Simulation {
    kernel: Arc<Kernel>,
}

impl Simulation {
    /// Create an empty simulation with the clock at zero.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Simulation {
        Simulation {
            kernel: Kernel::new(false),
        }
    }

    /// Create a simulation that schedules with the heap-only *reference*
    /// kernel: every `advance()` pushes an event and takes the full
    /// dispatch path, exactly like the original implementation. Used by the
    /// trace-equivalence tests as the oracle for the fast-path scheduler;
    /// behaviourally identical, just slower.
    #[cfg(any(test, feature = "ref-kernel"))]
    pub fn new_reference() -> Simulation {
        Simulation {
            kernel: Kernel::new(true),
        }
    }

    /// Record every dispatch decision (including inline
    /// self-continuations) from this point on; retrieve the trace from
    /// [`Simulation::run_traced`].
    pub fn record_trace(&self) {
        let mut st = self.kernel.state.lock();
        if st.trace.is_none() {
            st.trace = Some(Vec::new());
        }
    }

    /// Spawn a root simulated thread (runnable at t = 0).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> TaskId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_task(&self.kernel, name.into(), f, SimDuration::ZERO)
    }

    /// Run the simulation until every simulated thread has finished.
    /// Returns the final virtual time.
    ///
    /// # Panics
    /// Propagates the first panic raised inside any simulated thread, and
    /// panics on deadlock (live threads with no pending events).
    pub fn run(self) -> SimTime {
        self.run_inner().0
    }

    /// Like [`Simulation::run`], but also returns the dispatch trace
    /// recorded since [`Simulation::record_trace`] (empty if recording was
    /// never enabled).
    pub fn run_traced(self) -> (SimTime, Vec<Dispatch>) {
        let (end, trace) = self.run_inner();
        (end, trace.unwrap_or_default())
    }

    fn run_inner(self) -> (SimTime, Option<Vec<Dispatch>>) {
        let grant = {
            let mut st = self.kernel.state.lock();
            if !st.done && st.live > 0 {
                self.kernel.dispatch(&mut st)
            } else {
                st.done = true;
                None
            }
        };
        if let Some(g) = grant {
            g.gate.open(g.abort);
        }
        let mut st = self.kernel.state.lock();
        while !st.done {
            self.kernel.finished_cv.wait(&mut st);
        }
        if let Some(msg) = st.failure.take() {
            drop(st);
            panic!("{msg}");
        }
        (st.now, st.trace.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn clock_advances_per_thread() {
        let sim = Simulation::new();
        sim.spawn("a", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.advance(SimDuration::from_millis(10));
            assert_eq!(ctx.now().as_nanos(), 10_000_000);
        });
        assert_eq!(sim.run().as_nanos(), 10_000_000);
    }

    #[test]
    fn threads_interleave_in_time_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::new();
        for (name, delay) in [("late", 20u64), ("early", 5), ("mid", 12)] {
            let order = Arc::clone(&order);
            sim.spawn(name, move |ctx| {
                ctx.advance(SimDuration::from_millis(delay));
                order.lock().push(name);
            });
        }
        sim.run();
        assert_eq!(*order.lock(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn equal_times_dispatch_in_spawn_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::new();
        for i in 0..5usize {
            let order = Arc::clone(&order);
            sim.spawn(format!("t{i}"), move |ctx| {
                ctx.advance(SimDuration::from_millis(1));
                order.lock().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn park_unpark_handshake() {
        let sim = Simulation::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let waiter = sim.spawn("waiter", move |ctx| {
            ctx.park();
            hits2.fetch_add(1, Ordering::SeqCst);
            assert_eq!(ctx.now(), SimTime::from_nanos(3_000_000));
        });
        sim.spawn("waker", move |ctx| {
            ctx.advance(SimDuration::from_millis(3));
            ctx.unpark(waiter);
        });
        sim.run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unpark_before_park_leaves_permit() {
        let sim = Simulation::new();
        let target = sim.spawn("sleeper", |ctx| {
            // Sleep past the unpark, then park: the permit must be consumed
            // without blocking (otherwise: deadlock).
            ctx.advance(SimDuration::from_millis(10));
            ctx.park();
        });
        sim.spawn("early-waker", move |ctx| {
            ctx.advance(SimDuration::from_millis(1));
            ctx.unpark(target);
        });
        sim.run();
    }

    #[test]
    fn nested_spawn_runs() {
        let sim = Simulation::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        sim.spawn("parent", move |ctx| {
            let hits3 = Arc::clone(&hits2);
            ctx.spawn("child", move |ctx| {
                ctx.advance(SimDuration::from_micros(7));
                hits3.fetch_add(1, Ordering::SeqCst);
            });
            ctx.advance(SimDuration::from_millis(1));
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        let end = sim.run();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(end.as_nanos(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let sim = Simulation::new();
        sim.spawn("stuck", |ctx| ctx.park());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_propagates_to_run() {
        let sim = Simulation::new();
        sim.spawn("bomber", |ctx| {
            ctx.advance(SimDuration::from_millis(1));
            panic!("boom");
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_aborts_blocked_peers() {
        let sim = Simulation::new();
        sim.spawn("forever", |ctx| ctx.park());
        sim.spawn("bomber", |ctx| {
            ctx.advance(SimDuration::from_millis(1));
            panic!("boom");
        });
        sim.run();
    }

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let sim = Simulation::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn determinism_across_runs() {
        fn one_run() -> Vec<(u64, usize)> {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let sim = Simulation::new();
            for i in 0..8usize {
                let trace = Arc::clone(&trace);
                sim.spawn(format!("w{i}"), move |ctx| {
                    for step in 0..20u64 {
                        ctx.advance(SimDuration::from_nanos((i as u64 * 37 + step * 13) % 97));
                        trace.lock().push((ctx.now().as_nanos(), i));
                    }
                });
            }
            sim.run();
            let t = trace.lock().clone();
            t
        }
        assert_eq!(one_run(), one_run());
    }

    /// Build a workload mixing fast-path advances, ties, parks/unparks and
    /// nested spawns, and return its dispatch trace.
    fn traced_run(reference: bool) -> (u64, Vec<Dispatch>) {
        let sim = if reference {
            Simulation::new_reference()
        } else {
            Simulation::new()
        };
        sim.record_trace();
        for i in 0..6usize {
            sim.spawn(format!("w{i}"), move |ctx| {
                for step in 0..50u64 {
                    // Mix of unique wake times (fast-path eligible), ties
                    // (seq order must decide), and zero-length yields.
                    ctx.advance(SimDuration::from_nanos((i as u64 * 31 + step * 17) % 11));
                }
                if i == 0 {
                    let peer = ctx.spawn("child", |ctx| {
                        ctx.park();
                        ctx.advance(SimDuration::from_nanos(5));
                    });
                    ctx.advance(SimDuration::from_nanos(3));
                    ctx.unpark(peer);
                }
            });
        }
        let (end, trace) = sim.run_traced();
        (end.as_nanos(), trace)
    }

    #[test]
    fn fast_path_trace_matches_reference_kernel() {
        let fast = traced_run(false);
        let reference = traced_run(true);
        assert_eq!(fast.0, reference.0, "final virtual time diverged");
        assert_eq!(fast.1, reference.1, "dispatch traces diverged");
        // Sanity: the workload actually exercised scheduling decisions.
        assert!(fast.1.len() > 300);
    }

    #[test]
    fn batched_advance_is_visible_through_now_and_settles() {
        let sim = Simulation::new();
        sim.spawn("batcher", |ctx| {
            ctx.advance_batched(SimDuration::from_nanos(300));
            ctx.advance_batched(SimDuration::from_nanos(200));
            // Accrued time is observable through this context...
            assert_eq!(ctx.now().as_nanos(), 500);
            // ...and a settle commits it in one advance.
            ctx.settle_point();
            assert_eq!(ctx.now().as_nanos(), 500);
            ctx.settle_point(); // idempotent
            assert_eq!(ctx.now().as_nanos(), 500);
        });
        assert_eq!(sim.run().as_nanos(), 500);
    }

    #[test]
    fn batched_chunks_produce_the_merged_advance_trace() {
        // `advance_batched(a); advance_batched(b); advance(c)` must be
        // indistinguishable — same dispatch trace — from `advance(a+b+c)`.
        fn run(batched: bool) -> (u64, Vec<Dispatch>) {
            let sim = Simulation::new();
            sim.record_trace();
            for i in 0..4usize {
                sim.spawn(format!("w{i}"), move |ctx| {
                    for step in 0..30u64 {
                        let base = (i as u64 * 29 + step * 13) % 23;
                        if batched {
                            ctx.advance_batched(SimDuration::from_nanos(base));
                            ctx.advance_batched(SimDuration::from_nanos(base + 1));
                            ctx.advance(SimDuration::from_nanos(2));
                        } else {
                            ctx.advance(SimDuration::from_nanos(2 * base + 3));
                        }
                    }
                });
            }
            let (end, trace) = sim.run_traced();
            (end.as_nanos(), trace)
        }
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn unpark_during_accrual_carries_effective_time() {
        let sim = Simulation::new();
        let waiter = sim.spawn("waiter", |ctx| {
            ctx.park();
            assert_eq!(ctx.now().as_nanos(), 700);
        });
        sim.spawn("batcher", move |ctx| {
            ctx.advance_batched(SimDuration::from_nanos(700));
            // No settle: the wake event must still carry now + pending.
            ctx.unpark(waiter);
            ctx.advance_batched(SimDuration::from_nanos(50));
        });
        assert_eq!(sim.run().as_nanos(), 750);
    }

    #[test]
    fn spawn_during_accrual_starts_child_at_effective_time() {
        let sim = Simulation::new();
        sim.spawn("parent", |ctx| {
            ctx.advance_batched(SimDuration::from_nanos(400));
            ctx.spawn("child", |ctx| {
                assert_eq!(ctx.now().as_nanos(), 400);
            });
        });
        assert_eq!(sim.run().as_nanos(), 400);
    }

    #[test]
    fn exit_with_pending_accrual_settles() {
        let sim = Simulation::new();
        sim.spawn("tail", |ctx| {
            ctx.advance(SimDuration::from_nanos(10));
            ctx.advance_batched(SimDuration::from_nanos(90));
            // Falls off the end with 90 ns unsettled.
        });
        assert_eq!(sim.run().as_nanos(), 100);
    }

    #[test]
    fn park_settles_accrual_before_blocking() {
        let sim = Simulation::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let waiter = sim.spawn("waiter", move |ctx| {
            ctx.advance_batched(SimDuration::from_nanos(120));
            ctx.park();
            // The accrual committed before the block, so the resume clock
            // is the unparker's later time, not a stale one.
            assert_eq!(ctx.now().as_nanos(), 500);
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        sim.spawn("waker", move |ctx| {
            ctx.advance(SimDuration::from_nanos(500));
            ctx.unpark(waiter);
        });
        sim.run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
