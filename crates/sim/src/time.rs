//! Virtual time: instants ([`SimTime`]) and durations ([`SimDuration`]) with
//! nanosecond resolution.
//!
//! All timing in the simulator is expressed in these types. They are plain
//! `u64` nanosecond counters, so arithmetic is exact and the simulation is
//! fully deterministic: no wall-clock source is ever consulted.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    ns: u64,
}

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    ns: u64,
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime { ns: 0 };

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime { ns }
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.ns
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so this indicates a logic error in the caller.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.ns <= self.ns,
            "duration_since: {earlier:?} is after {self:?}"
        );
        SimDuration {
            ns: self.ns - earlier.ns,
        }
    }

    /// `max` of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.ns >= other.ns {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { ns: 0 };

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration { ns }
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration { ns: us * 1_000 }
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration { ns: ms * 1_000_000 }
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration {
            ns: s * 1_000_000_000,
        }
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s} s");
        SimDuration {
            ns: (s * 1e9).round() as u64,
        }
    }

    /// The virtual time it takes to process `bytes` at `bytes_per_sec`.
    ///
    /// This is the workhorse for charging compute and network costs. A rate
    /// of zero or below is a configuration error.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid rate: {bytes_per_sec} B/s"
        );
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.ns
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.saturating_sub(other.ns),
        }
    }

    /// `max` of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.ns >= other.ns {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            ns: self.ns.checked_add(rhs.ns).expect("SimTime overflow"),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.checked_add(rhs.ns).expect("SimDuration overflow"),
        }
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.ns <= self.ns, "SimDuration underflow");
        SimDuration {
            ns: self.ns - rhs.ns,
        }
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            ns: self.ns.checked_mul(rhs).expect("SimDuration overflow"),
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration { ns: self.ns / rhs }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn for_bytes_matches_rate() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let d = SimDuration::for_bytes(1 << 20, (1 << 20) as f64);
        assert_eq!(d, SimDuration::from_secs(1));
        // 64 KiB at 3.4 GB/s.
        let d = SimDuration::for_bytes(64 * 1024, 3.4e9);
        let expect = 64.0 * 1024.0 / 3.4e9;
        // Rounding to whole nanoseconds bounds the error by 0.5 ns.
        assert!((d.as_secs_f64() - expect).abs() <= 0.5e-9);
    }

    #[test]
    fn duration_ordering_and_sum() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(11));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn backwards_duration_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(2.5e-9).as_nanos(), 3); // round half up
    }
}
