//! Synchronization primitives for simulated threads.
//!
//! These mirror the standard-library primitives but block on **virtual
//! time** via [`SimCtx::park`]/[`SimCtx::unpark`]: a thread waiting on a
//! [`SimBarrier`] consumes no virtual time itself; the clock advances to
//! whenever the last participant arrives.
//!
//! Internally they use real mutexes, but since the kernel runs exactly one
//! simulated thread at a time, the locks are never contended; they exist
//! only to satisfy `Send`/`Sync`.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{SimCtx, TaskId};

/// A reusable barrier for a fixed number of simulated threads, the direct
/// analogue of the inter-machine barriers between join phases.
pub struct SimBarrier {
    inner: Mutex<BarrierState>,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    waiters: Vec<TaskId>,
    poisoned: bool,
}

/// Error returned by the checked wait/acquire variants once the primitive
/// has been poisoned (the cluster-abort path of the fault plane).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Poisoned;

impl std::fmt::Display for Poisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "synchronization primitive poisoned by abort")
    }
}

impl std::error::Error for Poisoned {}

impl SimBarrier {
    /// A barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Arc<SimBarrier> {
        assert!(n >= 1, "barrier needs at least one participant");
        Arc::new(SimBarrier {
            inner: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                waiters: Vec::with_capacity(n),
                poisoned: false,
            }),
            n,
        })
    }

    /// Poison the barrier: every current and future waiter wakes and
    /// observes [`Poisoned`] from [`SimBarrier::wait_checked`]. Used by the
    /// cluster-abort path so no worker hangs on a barrier a failed peer
    /// will never reach. Idempotent.
    pub fn poison(&self, ctx: &SimCtx) {
        let mut st = self.inner.lock();
        st.poisoned = true;
        for w in st.waiters.drain(..) {
            ctx.unpark(w);
        }
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Like [`SimBarrier::wait`], but returns `Err(Poisoned)` instead of
    /// blocking forever once the barrier has been poisoned (before or while
    /// waiting). `Ok(true)` marks the generation leader.
    pub fn wait_checked(&self, ctx: &SimCtx) -> Result<bool, Poisoned> {
        let gen = {
            let mut st = self.inner.lock();
            if st.poisoned {
                return Err(Poisoned);
            }
            st.arrived += 1;
            if st.arrived == self.n {
                st.arrived = 0;
                st.generation += 1;
                for w in st.waiters.drain(..) {
                    ctx.unpark(w);
                }
                return Ok(true);
            }
            st.waiters.push(ctx.id());
            st.generation
        };
        loop {
            ctx.park();
            let st = self.inner.lock();
            if st.poisoned {
                return Err(Poisoned);
            }
            if st.generation != gen {
                return Ok(false);
            }
        }
    }

    /// Block until all `n` participants have called `wait` for the current
    /// generation. Returns `true` for exactly one participant per
    /// generation (the *leader* — the last to arrive).
    pub fn wait(&self, ctx: &SimCtx) -> bool {
        let gen = {
            let mut st = self.inner.lock();
            st.arrived += 1;
            if st.arrived == self.n {
                st.arrived = 0;
                st.generation += 1;
                for w in st.waiters.drain(..) {
                    ctx.unpark(w);
                }
                return true;
            }
            st.waiters.push(ctx.id());
            st.generation
        };
        // Park until our generation completes. A single park suffices:
        // unparks are only issued by the generation leader, but guard
        // against permit carry-over by re-checking the generation.
        loop {
            ctx.park();
            if self.inner.lock().generation != gen {
                return false;
            }
        }
    }
}

/// An unbounded MPSC/MPMC channel between simulated threads.
///
/// `send` never blocks; `recv` parks the receiver until an item arrives.
/// Closing wakes all receivers, which then drain remaining items and get
/// `None`.
pub struct SimChannel<T> {
    inner: Mutex<ChannelState<T>>,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    receivers: VecDeque<TaskId>,
    senders_done: bool,
}

impl<T> SimChannel<T> {
    /// Create an open, empty channel.
    pub fn new() -> Arc<SimChannel<T>> {
        Arc::new(SimChannel {
            inner: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                receivers: VecDeque::new(),
                senders_done: false,
            }),
        })
    }

    /// Enqueue an item, waking one parked receiver if any.
    ///
    /// # Panics
    /// Panics if the channel has been closed.
    pub fn send(&self, ctx: &SimCtx, value: T) {
        let mut st = self.inner.lock();
        assert!(!st.senders_done, "send on closed SimChannel");
        st.queue.push_back(value);
        if let Some(rx) = st.receivers.pop_front() {
            ctx.unpark(rx);
        }
    }

    /// Receive the next item, parking until one is available. Returns
    /// `None` once the channel is closed *and* drained.
    pub fn recv(&self, ctx: &SimCtx) -> Option<T> {
        loop {
            {
                let mut st = self.inner.lock();
                if let Some(v) = st.queue.pop_front() {
                    return Some(v);
                }
                if st.senders_done {
                    return None;
                }
                st.receivers.push_back(ctx.id());
            }
            ctx.park();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }

    /// Close the channel: no further sends are allowed and all parked
    /// receivers wake (they drain the queue, then observe `None`).
    /// Idempotent: closing an already-closed channel is a no-op, so the
    /// abort path and the normal teardown path can race benignly.
    pub fn close(&self, ctx: &SimCtx) {
        let mut st = self.inner.lock();
        if st.senders_done {
            return;
        }
        st.senders_done = true;
        for rx in st.receivers.drain(..) {
            ctx.unpark(rx);
        }
    }

    /// Whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().senders_done
    }
}

/// A counting semaphore on virtual time. Used e.g. to bound in-flight RDMA
/// work requests per queue pair.
pub struct SimSemaphore {
    inner: Mutex<SemState>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<TaskId>,
    poisoned: bool,
}

impl SimSemaphore {
    /// A semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Arc<SimSemaphore> {
        Arc::new(SimSemaphore {
            inner: Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
                poisoned: false,
            }),
        })
    }

    /// Acquire one permit, parking until available.
    pub fn acquire(&self, ctx: &SimCtx) {
        loop {
            {
                let mut st = self.inner.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return;
                }
                st.waiters.push_back(ctx.id());
            }
            ctx.park();
        }
    }

    /// Like [`SimSemaphore::acquire`], but wakes with `Err(Poisoned)` once
    /// the semaphore is poisoned instead of waiting for a permit that a
    /// crashed peer will never release.
    pub fn acquire_checked(&self, ctx: &SimCtx) -> Result<(), Poisoned> {
        loop {
            {
                let mut st = self.inner.lock();
                if st.poisoned {
                    return Err(Poisoned);
                }
                if st.permits > 0 {
                    st.permits -= 1;
                    return Ok(());
                }
                st.waiters.push_back(ctx.id());
            }
            ctx.park();
        }
    }

    /// Poison the semaphore, waking every parked acquirer with
    /// [`Poisoned`] (checked variant only). Idempotent.
    pub fn poison(&self, ctx: &SimCtx) {
        let mut st = self.inner.lock();
        st.poisoned = true;
        for w in st.waiters.drain(..) {
            ctx.unpark(w);
        }
    }

    /// Release one permit, waking one parked acquirer if any.
    pub fn release(&self, ctx: &SimCtx) {
        let mut st = self.inner.lock();
        st.permits += 1;
        if let Some(w) = st.waiters.pop_front() {
            ctx.unpark(w);
        }
    }

    /// Current number of available permits.
    pub fn available(&self) -> usize {
        self.inner.lock().permits
    }
}

/// A one-shot event: waiters park until [`SimEvent::set`] fires; afterwards
/// `wait` returns immediately. The analogue of an RDMA completion
/// notification for a single outstanding work request.
pub struct SimEvent {
    inner: Mutex<EventState>,
}

struct EventState {
    set: bool,
    waiters: Vec<TaskId>,
}

impl SimEvent {
    /// A fresh, un-fired event.
    pub fn new() -> Arc<SimEvent> {
        Arc::new(SimEvent {
            inner: Mutex::new(EventState {
                set: false,
                waiters: Vec::new(),
            }),
        })
    }

    /// Fire the event, waking all waiters. Idempotent.
    pub fn set(&self, ctx: &SimCtx) {
        let mut st = self.inner.lock();
        st.set = true;
        for w in st.waiters.drain(..) {
            ctx.unpark(w);
        }
    }

    /// Whether the event has fired.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// Park until the event fires (returns immediately if already fired).
    pub fn wait(&self, ctx: &SimCtx) {
        loop {
            {
                let mut st = self.inner.lock();
                if st.set {
                    return;
                }
                st.waiters.push(ctx.id());
            }
            ctx.park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes_to_slowest() {
        let sim = Simulation::new();
        let barrier = SimBarrier::new(4);
        let release_times = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u64 {
            let barrier = Arc::clone(&barrier);
            let times = Arc::clone(&release_times);
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.advance(SimDuration::from_millis(1 + i * 10));
                barrier.wait(ctx);
                times.lock().push(ctx.now().as_nanos());
            });
        }
        sim.run();
        let times = release_times.lock();
        // Everyone released at the time of the slowest arriver (31 ms).
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|&t| t == 31_000_000));
    }

    #[test]
    fn barrier_has_exactly_one_leader_per_generation() {
        let sim = Simulation::new();
        let barrier = SimBarrier::new(3);
        let leaders = Arc::new(AtomicUsize::new(0));
        for i in 0..3u64 {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            sim.spawn(format!("w{i}"), move |ctx| {
                for round in 0..5u64 {
                    ctx.advance(SimDuration::from_micros(i * 7 + round));
                    if barrier.wait(ctx) {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        sim.run();
        assert_eq!(leaders.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn channel_delivers_in_fifo_order() {
        let sim = Simulation::new();
        let ch = SimChannel::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let ch = Arc::clone(&ch);
            let got = Arc::clone(&got);
            sim.spawn("rx", move |ctx| {
                while let Some(v) = ch.recv(ctx) {
                    got.lock().push(v);
                }
            });
        }
        {
            let ch = Arc::clone(&ch);
            sim.spawn("tx", move |ctx| {
                for v in 0..10u32 {
                    ctx.advance(SimDuration::from_micros(1));
                    ch.send(ctx, v);
                }
                ch.close(ctx);
            });
        }
        sim.run();
        assert_eq!(*got.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn channel_close_wakes_receiver_with_none() {
        let sim = Simulation::new();
        let ch: Arc<SimChannel<u32>> = SimChannel::new();
        let saw_none = Arc::new(AtomicUsize::new(0));
        {
            let ch = Arc::clone(&ch);
            let saw_none = Arc::clone(&saw_none);
            sim.spawn("rx", move |ctx| {
                assert!(ch.recv(ctx).is_none());
                saw_none.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            let ch = Arc::clone(&ch);
            sim.spawn("closer", move |ctx| {
                ctx.advance(SimDuration::from_millis(2));
                ch.close(ctx);
            });
        }
        sim.run();
        assert_eq!(saw_none.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        // Two permits, four workers each holding a permit for 10 ms: total
        // virtual span must be 20 ms (two waves), not 10 (unbounded) or
        // 40 (serialized).
        let sim = Simulation::new();
        let sem = SimSemaphore::new(2);
        let max_end = Arc::new(AtomicU64::new(0));
        for i in 0..4 {
            let sem = Arc::clone(&sem);
            let max_end = Arc::clone(&max_end);
            sim.spawn(format!("w{i}"), move |ctx| {
                sem.acquire(ctx);
                ctx.advance(SimDuration::from_millis(10));
                sem.release(ctx);
                max_end.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            });
        }
        sim.run();
        assert_eq!(max_end.load(Ordering::SeqCst), 20_000_000);
    }

    #[test]
    fn event_wakes_all_waiters_and_is_sticky() {
        let sim = Simulation::new();
        let ev = SimEvent::new();
        let woken = Arc::new(AtomicUsize::new(0));
        for i in 0..3 {
            let ev = Arc::clone(&ev);
            let woken = Arc::clone(&woken);
            sim.spawn(format!("waiter{i}"), move |ctx| {
                ev.wait(ctx);
                woken.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            let ev = Arc::clone(&ev);
            sim.spawn("setter", move |ctx| {
                ctx.advance(SimDuration::from_millis(1));
                ev.set(ctx);
            });
        }
        // A late waiter sees the event already set.
        {
            let ev = Arc::clone(&ev);
            let woken = Arc::clone(&woken);
            sim.spawn("late", move |ctx| {
                ctx.advance(SimDuration::from_millis(5));
                ev.wait(ctx);
                woken.fetch_add(1, Ordering::SeqCst);
            });
        }
        sim.run();
        assert_eq!(woken.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn semaphore_starvation_is_a_deadlock() {
        let sim = Simulation::new();
        let sem = SimSemaphore::new(0);
        sim.spawn("starved", move |ctx| sem.acquire(ctx));
        sim.run();
    }

    #[test]
    fn poisoned_barrier_wakes_and_rejects_waiters() {
        let sim = Simulation::new();
        let barrier = SimBarrier::new(3);
        let rejected = Arc::new(AtomicUsize::new(0));
        for i in 0..2u64 {
            let barrier = Arc::clone(&barrier);
            let rejected = Arc::clone(&rejected);
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.advance(SimDuration::from_millis(i));
                assert_eq!(barrier.wait_checked(ctx), Err(Poisoned));
                rejected.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            // The third participant never arrives; it poisons instead.
            let barrier = Arc::clone(&barrier);
            let rejected = Arc::clone(&rejected);
            sim.spawn("poisoner", move |ctx| {
                ctx.advance(SimDuration::from_millis(5));
                barrier.poison(ctx);
                // Late arrivals are rejected immediately.
                assert_eq!(barrier.wait_checked(ctx), Err(Poisoned));
                rejected.fetch_add(1, Ordering::SeqCst);
            });
        }
        sim.run();
        assert_eq!(rejected.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn unpoisoned_checked_wait_matches_plain_wait() {
        let sim = Simulation::new();
        let barrier = SimBarrier::new(2);
        let leaders = Arc::new(AtomicUsize::new(0));
        for i in 0..2u64 {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.advance(SimDuration::from_millis(i));
                if barrier.wait_checked(ctx).expect("not poisoned") {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        sim.run();
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn poisoned_semaphore_unblocks_checked_acquirers() {
        let sim = Simulation::new();
        let sem = SimSemaphore::new(0);
        let rejected = Arc::new(AtomicUsize::new(0));
        {
            let sem = Arc::clone(&sem);
            let rejected = Arc::clone(&rejected);
            sim.spawn("starved", move |ctx| {
                assert_eq!(sem.acquire_checked(ctx), Err(Poisoned));
                rejected.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            let sem = Arc::clone(&sem);
            sim.spawn("poisoner", move |ctx| {
                ctx.advance(SimDuration::from_millis(1));
                sem.poison(ctx);
            });
        }
        sim.run();
        assert_eq!(rejected.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn channel_close_is_idempotent() {
        let sim = Simulation::new();
        let ch: Arc<SimChannel<u32>> = SimChannel::new();
        sim.spawn("closer", move |ctx| {
            ch.close(ctx);
            ch.close(ctx);
            assert!(ch.is_closed());
            assert!(ch.recv(ctx).is_none());
        });
        sim.run();
    }
}
