//! # rsj-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the rack-scale join reproduction: a virtual clock and a
//! cooperative scheduler that runs *real Rust code* on *simulated time*.
//!
//! Each simulated thread is an OS thread, but the kernel guarantees that at
//! most one runs at any instant; threads hand control to one another at
//! *yield points* ([`SimCtx::advance`], [`SimCtx::park`]). Virtual time
//! jumps from event to event, so a run is deterministic regardless of host
//! speed or core count — which is what lets a 1-core container reproduce the
//! timing behaviour of a 10-node InfiniBand cluster (see `DESIGN.md` §1).
//!
//! ## Example
//!
//! ```
//! use rsj_sim::{Simulation, SimDuration, SimBarrier};
//! use std::sync::Arc;
//!
//! let sim = Simulation::new();
//! let barrier = SimBarrier::new(2);
//! for (name, work_ms) in [("fast", 1u64), ("slow", 9)] {
//!     let barrier = Arc::clone(&barrier);
//!     sim.spawn(name, move |ctx| {
//!         ctx.advance(SimDuration::from_millis(work_ms));
//!         barrier.wait(ctx);
//!         // Both threads leave the barrier at t = 9 ms.
//!         assert_eq!(ctx.now().as_nanos(), 9_000_000);
//!     });
//! }
//! assert_eq!(sim.run().as_nanos(), 9_000_000);
//! ```

mod kernel;
mod sync;
mod time;

pub use kernel::{Dispatch, SimCtx, Simulation, TaskId};
pub use sync::{Poisoned, SimBarrier, SimChannel, SimEvent, SimSemaphore};
pub use time::{SimDuration, SimTime};
