//! CPU-utilization view of the interleaving argument (§3.2.1/§6.3): the
//! whole point of asynchronous RDMA is that "the processor remains
//! available for processing while a network operation is taking place".
//! This example measures it: per-machine CPU busy time, send-stall time,
//! and utilization for the interleaved and non-interleaved variants.
//!
//! ```text
//! cargo run --release --example utilization_report
//! ```

use rsj::cluster::ClusterSpec;
use rsj::core::{run_distributed_join, DistJoinConfig, TransportMode};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn run(transport: TransportMode) -> rsj::core::DistJoinOutcome {
    let machines = 4;
    let mut cfg = DistJoinConfig::new(ClusterSpec::qdr_cluster(machines));
    cfg.radix_bits = (4, 7);
    cfg.rdma_buf_size = 2048;
    cfg.transport = transport;
    let n = 3_000_000;
    let r = generate_inner::<Tuple16>(n, machines, 13);
    let (s, oracle) = generate_outer::<Tuple16>(n, n, machines, Skew::None, 14);
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);
    out
}

fn main() {
    println!("3M ⋈ 3M tuples on 4 QDR machines, 8 cores each\n");
    for (label, transport) in [
        ("interleaved", TransportMode::RdmaInterleaved),
        ("non-interleaved", TransportMode::RdmaNonInterleaved),
    ] {
        let out = run(transport);
        let total = out.phases.total().as_secs_f64();
        println!(
            "{label}: total {} | network pass {}",
            out.phases.total(),
            out.phases.network_partition
        );
        println!(
            "  {:>8}  {:>12} {:>12} {:>12}",
            "machine", "cpu busy (s)", "stalled (s)", "utilization"
        );
        for (i, m) in out.machines.iter().enumerate() {
            println!(
                "  {:>8}  {:>12.5} {:>12.5} {:>11.1}%",
                i,
                m.cpu_busy_seconds,
                m.send_stall_seconds,
                m.cpu_busy_seconds / (8.0 * total) * 100.0
            );
        }
        println!();
    }
    println!("Expected shape: the non-interleaved variant stalls its partitioning");
    println!("threads after every posted buffer, so its send-stall column grows and");
    println!("its utilization drops — the time the interleaved variant spends");
    println!("computing under in-flight transfers (§6.3's ~35% network-pass gap).");
}
