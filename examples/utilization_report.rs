//! CPU-utilization view of the interleaving argument (§3.2.1/§6.3): the
//! whole point of asynchronous RDMA is that "the processor remains
//! available for processing while a network operation is taking place".
//! This example measures it: per-machine CPU busy time, send-stall time,
//! and utilization for the interleaved and non-interleaved variants —
//! plus a rack rollup from the self-healing query service (DESIGN.md
//! §13): per-host live/fenced status, detection latency, and recovery
//! counters after a mid-batch host crash.
//!
//! ```text
//! cargo run --release --example utilization_report
//! ```

use std::sync::Arc;

use rsj::cluster::{ClusterSpec, HealingConfig, JoinRequest, QueryService, ServiceConfig};
use rsj::core::{run_distributed_join, DistJoinConfig, DistJoinJob, TransportMode};
use rsj::rdma::{FaultPlan, HostCrash, HostId};
use rsj::sim::SimTime;
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn run(transport: TransportMode) -> rsj::core::DistJoinOutcome {
    let machines = 4;
    let mut cfg = DistJoinConfig::new(ClusterSpec::qdr_cluster(machines));
    cfg.radix_bits = (4, 7);
    cfg.rdma_buf_size = 2048;
    cfg.transport = transport;
    let n = 3_000_000;
    let r = generate_inner::<Tuple16>(n, machines, 13);
    let (s, oracle) = generate_outer::<Tuple16>(n, n, machines, Skew::None, 14);
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);
    out
}

fn main() {
    println!("3M ⋈ 3M tuples on 4 QDR machines, 8 cores each\n");
    for (label, transport) in [
        ("interleaved", TransportMode::RdmaInterleaved),
        ("non-interleaved", TransportMode::RdmaNonInterleaved),
    ] {
        let out = run(transport);
        let total = out.phases.total().as_secs_f64();
        println!(
            "{label}: total {} | network pass {}",
            out.phases.total(),
            out.phases.network_partition
        );
        println!(
            "  {:>8}  {:>12} {:>12} {:>12}",
            "machine", "cpu busy (s)", "stalled (s)", "utilization"
        );
        for (i, m) in out.machines.iter().enumerate() {
            println!(
                "  {:>8}  {:>12.5} {:>12.5} {:>11.1}%",
                i,
                m.cpu_busy_seconds,
                m.send_stall_seconds,
                m.cpu_busy_seconds / (8.0 * total) * 100.0
            );
        }
        println!();
    }
    println!("Expected shape: the non-interleaved variant stalls its partitioning");
    println!("threads after every posted buffer, so its send-stall column grows and");
    println!("its utilization drops — the time the interleaved variant spends");
    println!("computing under in-flight transfers (§6.3's ~35% network-pass gap).");

    healing_rollup();
}

/// Rack rollup from the self-healing service: a small mixed batch over a
/// six-host rack with one host fail-stopped mid-batch, healing armed.
fn healing_rollup() {
    let hosts = 6;
    let mut plan = FaultPlan::fault_free();
    plan.crashes = vec![HostCrash {
        host: HostId(2),
        at: SimTime::from_nanos(300_000),
    }];
    let mut cfg = ServiceConfig::qdr_rack(hosts, 2);
    cfg.max_concurrent = 4;
    cfg.fault_plan = Some(plan);
    cfg.healing = HealingConfig::armed();

    let requests: Vec<JoinRequest> = (0..8)
        .map(|q| {
            let m = 2 + (q % 2);
            let seed = 900 + q as u64 * 2;
            let r = generate_inner::<Tuple16>(2_000, m, seed);
            let (s, _) = generate_outer::<Tuple16>(6_000, 2_000, m, Skew::None, seed + 1);
            let mut jcfg = DistJoinConfig::new(ClusterSpec::qdr_cluster(m));
            jcfg.cluster.cores_per_machine = 2;
            jcfg.radix_bits = (4, 2);
            jcfg.rdma_buf_size = 1024;
            JoinRequest {
                label: format!("q{q}"),
                id: None,
                placement: None,
                job: DistJoinJob::new(jcfg, r, s) as Arc<dyn rsj::cluster::QueryJob>,
            }
        })
        .collect();
    let report = QueryService::run(&cfg, requests);

    println!("\nSelf-healing rack rollup (host 2 fail-stops at 300 µs, DESIGN.md §13):");
    println!(
        "  {} queries: {} completed, {} healed across {} re-admission(s), {} rejected typed\n",
        report.queries.len(),
        report.completed(),
        report.healed,
        report.retries,
        report.rejected
    );
    println!(
        "  {:>4}  {:>7} {:>14} {:>14} {:>10} {:>9}",
        "host", "status", "crashed at", "detected in", "recovered", "rejected"
    );
    for h in &report.hosts {
        println!(
            "  {:>4}  {:>7} {:>14} {:>14} {:>10} {:>9}",
            h.host.0,
            if h.fenced { "FENCED" } else { "live" },
            h.crashed_at.map_or_else(
                || "-".to_string(),
                |t| format!("{:.1} µs", t.as_nanos() as f64 / 1e3)
            ),
            h.detection_latency.map_or_else(
                || "-".to_string(),
                |d| format!("{:.1} µs", d.as_nanos() as f64 / 1e3)
            ),
            h.queries_recovered,
            h.queries_rejected
        );
    }
}
