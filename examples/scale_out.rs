//! Scale-out study (the paper's Figures 6a/7a + the §5 model): sweep the
//! machine count on the QDR cluster, compare measured phase times against
//! the analytical model, and watch the network become the bottleneck.
//!
//! ```text
//! cargo run --release --example scale_out
//! ```

use rsj::cluster::ClusterSpec;
use rsj::core::{run_distributed_join, DistJoinConfig};
use rsj::model::{self, ModelInput};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn main() {
    let n = 4_000_000u64; // tuples per relation
    println!("{n} ⋈ {n} tuples, QDR cluster, 8 cores per machine\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>13} {:>9}",
        "machines", "measured", "estimated", "net pass", "est. net", "regime"
    );
    let mut t2 = None;
    let mut t10 = None;
    for machines in [2usize, 4, 6, 8, 10] {
        let spec = ClusterSpec::qdr_cluster(machines);
        let input = ModelInput::from_cluster(&spec, (n * 16) as f64, (n * 16) as f64);
        let pred = model::predict(&input);

        let mut cfg = DistJoinConfig::new(spec);
        // Example-scale tuning: at 4M tuples the paper's 2^10 partitions x
        // 64 KiB buffers would leave every message a tiny partial flush,
        // pinning the pass to the per-message floor. Fewer partitions and
        // 4 KiB buffers keep the example in the bandwidth-bound regime the
        // model describes.
        cfg.radix_bits = (5, 7);
        cfg.rdma_buf_size = 4096;
        let r = generate_inner::<Tuple16>(n, machines, 5);
        let (s, oracle) = generate_outer::<Tuple16>(n, n, machines, Skew::None, 6);
        let out = run_distributed_join(cfg, r, s);
        oracle.verify(&out.result);

        let total = out.phases.total().as_secs_f64();
        if machines == 2 {
            t2 = Some(total);
        }
        if machines == 10 {
            t10 = Some(total);
        }
        println!(
            "{:>8} {:>11.4}s {:>11.4}s {:>11.4}s {:>12.4}s {:>9}",
            machines,
            total,
            pred.total().as_secs_f64(),
            out.phases.network_partition.as_secs_f64(),
            pred.phases.network_partition.as_secs_f64(),
            if pred.network_bound { "net" } else { "cpu" },
        );
    }
    let speedup = t2.unwrap() / t10.unwrap();
    println!(
        "\nspeed-up from 2 to 10 machines: {speedup:.2}x — sub-linear, because the\n\
         QDR network (3.4 GB/s minus congestion) cannot keep up with the\n\
         aggregate partitioning speed (the paper measures 2.91x, §6.4.3)."
    );
}
