//! Receive semantics (the paper's §4.2.2): one-sided memory semantics vs
//! two-sided channel semantics for the network partitioning pass.
//!
//! One-sided: the receiver pre-registers one large region per (partition,
//! source) — sized exactly from the histograms — and senders RDMA-WRITE
//! into it; no receiver CPU, but a lot of pinned memory. Two-sided: a pool
//! of small pre-registered receive buffers and one receiver core copying
//! them out; little pinned memory, one core spent.
//!
//! ```text
//! cargo run --release --example receive_semantics
//! ```

use rsj::cluster::ClusterSpec;
use rsj::core::{run_distributed_join, DistJoinConfig, ReceiveMode};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn run(receive: ReceiveMode) -> rsj::core::DistJoinOutcome {
    let machines = 4;
    let mut cfg = DistJoinConfig::new(ClusterSpec::fdr_cluster(machines));
    cfg.radix_bits = (8, 4);
    cfg.receive = receive;
    let n = 4_000_000;
    let r = generate_inner::<Tuple16>(n, machines, 9);
    let (s, oracle) = generate_outer::<Tuple16>(2 * n, n, machines, Skew::None, 10);
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);
    out
}

fn main() {
    println!("4M ⋈ 8M tuples on 4 FDR machines\n");
    for (label, mode) in [
        ("two-sided (channel semantics)", ReceiveMode::TwoSided),
        ("one-sided (memory semantics)", ReceiveMode::OneSided),
    ] {
        let out = run(mode);
        let pinned: u64 = out.machines.iter().map(|m| m.registered_bytes).sum();
        println!("{label}:");
        println!("  total           {}", out.phases.total());
        println!("  network pass    {}", out.phases.network_partition);
        println!("  pinned memory   {pinned} bytes across the cluster");
        println!();
    }
    println!("Both modes produce the identical verified result. One-sided trades");
    println!("pinned memory (and registration time in the histogram phase) for a");
    println!("receiver-free network pass with all cores partitioning; the paper's");
    println!("evaluation uses channel semantics, and notes memory semantics are");
    println!("preferable only when memory is plentiful (§4.2.2). No significant");
    println!("performance difference between the two is expected (§3.2.2).");
}
