//! The §7 generalization in action: run the same workload through four
//! distributed operators — the paper's radix hash join, a sort-merge
//! join, the cyclo-join of §2.3, and a group-by aggregation — all built
//! on the same RDMA buffer-pooling/interleaving machinery.
//!
//! ```text
//! cargo run --release --example operator_zoo
//! ```

use rsj::cluster::ClusterSpec;
use rsj::core::{run_distributed_join, DistJoinConfig};
use rsj::operators::{
    run_aggregation, run_cyclo_join, run_sort_merge_join, AggregationConfig, CycloJoinConfig,
    SortMergeConfig,
};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

const MACHINES: usize = 4;
const N_R: u64 = 1_000_000;
const N_S: u64 = 4_000_000;

fn workload() -> (
    rsj::workload::Relation<Tuple16>,
    rsj::workload::Relation<Tuple16>,
    rsj::workload::ExpectedResult,
) {
    let r = generate_inner::<Tuple16>(N_R, MACHINES, 71);
    let (s, oracle) = generate_outer::<Tuple16>(N_S, N_R, MACHINES, Skew::None, 72);
    (r, s, oracle)
}

fn main() {
    println!("{N_R} ⋈ {N_S} tuples on {MACHINES} FDR machines, 8 cores each\n");
    let spec = ClusterSpec::fdr_cluster(MACHINES);

    // Radix hash join (the paper's algorithm).
    let (r, s, oracle) = workload();
    let mut cfg = DistJoinConfig::new(spec.clone());
    cfg.radix_bits = (8, 4);
    let hash = run_distributed_join(cfg, r, s);
    oracle.verify(&hash.result);
    println!(
        "{:>22}: total {} (net pass {})",
        "radix hash join",
        hash.phases.total(),
        hash.phases.network_partition
    );

    // Sort-merge join over the same network pass.
    let (r, s, oracle) = workload();
    let mut cfg = SortMergeConfig::new(spec.clone());
    cfg.radix_bits = 8;
    let sm = run_sort_merge_join(cfg, r, s);
    oracle.verify(&sm.result);
    println!(
        "{:>22}: total {} (sort {}, merge {})",
        "sort-merge join",
        sm.phases.total(),
        sm.phases.local_partition,
        sm.phases.build_probe
    );

    // Cyclo-join: no partitioning, the outer relation rotates the ring.
    let (r, s, oracle) = workload();
    let cyclo = run_cyclo_join(CycloJoinConfig::new(spec.clone()), r, s);
    oracle.verify(&cyclo.result);
    println!(
        "{:>22}: total {} ({} rotation+probe rounds)",
        "cyclo-join",
        cyclo.phases.total(),
        MACHINES
    );

    // Group-by aggregation over the outer relation.
    let (_, s, _) = workload();
    let mut cfg = AggregationConfig::new(spec);
    cfg.radix_bits = 8;
    let agg = run_aggregation(cfg, s);
    println!(
        "{:>22}: total {} ({} groups)",
        "aggregation",
        agg.phases.total(),
        agg.result.groups
    );
    assert_eq!(agg.result.groups, N_R, "every inner key appears in S");

    println!("\nAll joins produced the identical verified result. Expected");
    println!("ordering (paper §2.2/§2.3): radix hash < sort-merge < cyclo-join —");
    println!("sorting is slower than radix partitioning per pass, and the");
    println!("cyclo-join ships the outer relation around the whole ring while");
    println!("probing machine-sized, cache-cold tables.");
}
