//! Transport shootout (the paper's Figure 5b in miniature): the same join
//! over TCP/IPoIB, non-interleaved RDMA, and interleaved RDMA.
//!
//! Demonstrates the paper's two headline findings about the network
//! partitioning pass: upper-layer protocols (IPoIB) cannot deliver the
//! fabric's performance, and interleaving computation with communication
//! hides a large part of the remaining wire time.
//!
//! ```text
//! cargo run --release --example transport_shootout
//! ```

use rsj::cluster::{ClusterSpec, Interconnect};
use rsj::core::{run_distributed_join, DistJoinConfig, TransportMode};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn run(transport: TransportMode) -> rsj::core::DistJoinOutcome {
    let machines = 4;
    let mut cfg = DistJoinConfig::new(ClusterSpec::fdr_cluster(machines));
    // Example-scale tuning: few enough network partitions (and small
    // enough buffers) that every (thread, partition) stream fills many
    // buffers — the regime where double buffering has something to hide.
    cfg.radix_bits = (4, 8);
    cfg.rdma_buf_size = 1024;
    cfg.transport = transport;
    if transport == TransportMode::Tcp {
        // The TCP baseline runs over IPoIB: 1.8 GB/s effective bandwidth
        // through the kernel network stack.
        cfg.cluster.interconnect = Interconnect::IpoIb;
    }
    let n = 4_000_000;
    let r = generate_inner::<Tuple16>(n, machines, 7);
    let (s, oracle) = generate_outer::<Tuple16>(n, n, machines, Skew::None, 8);
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);
    out
}

fn main() {
    println!("4M ⋈ 4M tuples on 4 machines, 8 cores each\n");
    let mut rows = Vec::new();
    for (label, transport) in [
        ("TCP over IPoIB", TransportMode::Tcp),
        ("RDMA, non-interleaved", TransportMode::RdmaNonInterleaved),
        ("RDMA, interleaved", TransportMode::RdmaInterleaved),
    ] {
        let out = run(transport);
        println!(
            "{label:>22}: total {} | network pass {} | send stalls {:.3}s",
            out.phases.total(),
            out.phases.network_partition,
            out.machines
                .iter()
                .map(|m| m.send_stall_seconds)
                .sum::<f64>()
        );
        rows.push((label, out));
    }
    let tcp = rows[0].1.phases.network_partition.as_secs_f64();
    let nil = rows[1].1.phases.network_partition.as_secs_f64();
    let il = rows[2].1.phases.network_partition.as_secs_f64();
    println!(
        "\nnetwork pass: RDMA beats TCP by {:.1}x; interleaving saves another {:.0}%",
        tcp / nil,
        (1.0 - il / nil) * 100.0
    );
    println!("(every variant produced the identical, verified join result)");
}
