//! Transport shootout — which transport, and which dataplane, should
//! carry the join? Three experiments, all deterministic and
//! seed-replayable:
//!
//! **Part 1 (wire transport, the paper's Figure 5b in miniature).** The
//! same join over TCP/IPoIB, non-interleaved RDMA, and interleaved RDMA:
//! upper-layer protocols cannot deliver the fabric's performance, and
//! interleaving computation with communication hides much of the
//! remaining wire time.
//!
//! **Part 2 (probe dataplane, join level).** The full radix join,
//! two-sided (partition-and-ship S, [`Transport::TwoSided`]) versus
//! one-sided (publish R as seqlock bucket tables, READ them during the
//! probe, [`Transport::OneSided`]), across probe-duplication regimes.
//! Uniform probes touch every bucket of every remote table, so fetching
//! tables moves *more* bytes than shipping S; heavily skewed probes hit
//! a few hot buckets that the per-core fetch dedup collapses, and
//! one-sided wins. The crossover is pinned by
//! `crates/core/tests/one_sided.rs::wire_traffic_crossover_tracks_probe_duplication`
//! and turned into advice by the DESIGN.md §11 transport-selection guide.
//!
//! **Part 3 (operation level).** A GET/PUT microbenchmark over the raw
//! fabric, one-sided versus RPC-emulated, swept across value sizes and
//! read fractions:
//!
//! * one-sided GET — 1 READ when the value fits the inline MTU, else a
//!   pointer chase of 2 dependent READs;
//! * one-sided PUT — WRITE + 4-byte READ-back (the seqlock version bump
//!   must be observed before the mutation counts), 2 round trips;
//! * RPC GET/PUT — SEND request, server dispatch CPU + copy, SEND
//!   response: 1 round trip but a busy receiver core.
//!
//! ```text
//! cargo run --release --example transport_shootout
//! cargo run --release --example transport_shootout -- --quick
//! cargo run --release --example transport_shootout -- \
//!     --tuples=400000 --sizes=64,512,4096,16384 --ratios=0.50,0.90,0.99 --mtu=4096
//! ```

use rsj::cluster::{ClusterSpec, Interconnect};
use rsj::core::{run_distributed_join, DistJoinConfig, Transport, TransportMode};
use rsj::rdma::{Fabric, FabricConfig, HostId, NicCosts};
use rsj::sim::{SimDuration, Simulation};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};
use std::sync::{Arc, Mutex};

/// Server-side cost of one RPC dispatch (poll completion, decode, branch).
const RPC_DISPATCH_SECONDS: f64 = 0.5e-6;
/// Rate at which the server copies a value into its response buffer.
const RPC_COPY_RATE: f64 = 20.0e9;
/// Operations per (size, ratio) cell of the part-3 sweep.
const OPS_PER_CELL: usize = 200;

struct Args {
    tuples: u64,
    sizes: Vec<usize>,
    ratios: Vec<f64>,
    mtu: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        tuples: 200_000,
        sizes: vec![64, 512, 4096, 16384],
        ratios: vec![0.50, 0.90, 0.99],
        mtu: 4096,
    };
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            args.tuples = 60_000;
            args.sizes = vec![64, 4096];
            args.ratios = vec![0.50, 0.99];
        } else if let Some(v) = a.strip_prefix("--tuples=") {
            args.tuples = v.parse().expect("--tuples=N");
        } else if let Some(v) = a.strip_prefix("--mtu=") {
            args.mtu = v.parse().expect("--mtu=BYTES");
        } else if let Some(v) = a.strip_prefix("--sizes=") {
            args.sizes = v.split(',').map(|s| s.parse().expect("size")).collect();
        } else if let Some(v) = a.strip_prefix("--ratios=") {
            args.ratios = v.split(',').map(|s| s.parse().expect("ratio")).collect();
        } else {
            panic!("unknown flag {a}; see the module docs for usage");
        }
    }
    args
}

fn base_cfg(tuples: u64) -> (DistJoinConfig, u64) {
    let machines = 3;
    let mut cfg = DistJoinConfig::new(ClusterSpec::fdr_cluster(machines));
    cfg.cluster.cores_per_machine = 4;
    cfg.radix_bits = (4, 3);
    cfg.rdma_buf_size = 1024;
    let _ = tuples;
    (cfg, machines as u64)
}

fn join_inputs(
    tuples: u64,
    machines: usize,
    skew: Skew,
) -> (
    rsj::workload::Relation<Tuple16>,
    rsj::workload::Relation<Tuple16>,
    rsj::workload::ExpectedResult,
) {
    let r = generate_inner::<Tuple16>(tuples, machines, 9101);
    let (s, oracle) = generate_outer::<Tuple16>(3 * tuples, tuples, machines, skew, 9102);
    (r, s, oracle)
}

// ------------------------------------------------- part 1: wire transport

fn part1(tuples: u64) {
    println!(
        "Part 1 — wire transport: {tuples} ⋈ {} tuples, 3 machines, 4 cores\n",
        3 * tuples
    );
    let mut net = Vec::new();
    for (label, transport) in [
        ("TCP over IPoIB", TransportMode::Tcp),
        ("RDMA, non-interleaved", TransportMode::RdmaNonInterleaved),
        ("RDMA, interleaved", TransportMode::RdmaInterleaved),
    ] {
        let (mut cfg, m) = base_cfg(tuples);
        cfg.transport = transport;
        if transport == TransportMode::Tcp {
            cfg.cluster.interconnect = Interconnect::IpoIb;
        }
        let (r, s, oracle) = join_inputs(tuples, m as usize, Skew::None);
        let out = run_distributed_join(cfg, r, s);
        oracle.verify(&out.result);
        println!(
            "{label:>22}: total {} | network pass {}",
            out.phases.total(),
            out.phases.network_partition,
        );
        net.push(out.phases.network_partition.as_secs_f64());
    }
    println!(
        "\nnetwork pass: RDMA beats TCP by {:.1}x; interleaving saves another {:.0}%\n",
        net[0] / net[1],
        (1.0 - net[2] / net[1]) * 100.0
    );
}

// ------------------------------------------------ part 2: probe dataplane

fn join_run(transport: Transport, tuples: u64, skew: Skew) -> (f64, u64) {
    let (mut cfg, m) = base_cfg(tuples);
    cfg.probe_transport = transport;
    let (r, s, oracle) = join_inputs(tuples, m as usize, skew);
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);
    let wire: u64 = out.machines.iter().map(|x| x.tx_bytes).sum();
    (out.phases.total().as_secs_f64(), wire)
}

fn part2(tuples: u64) {
    println!(
        "Part 2 — probe dataplane: {tuples} ⋈ {} tuples, 3 machines (FDR)",
        3 * tuples
    );
    println!(
        "{:>12} {:>14} {:>12} {:>14} {:>12}   verdict (wire)",
        "probe skew", "2-sided time", "wire MB", "1-sided time", "wire MB"
    );
    for (label, skew) in [
        ("uniform", Skew::None),
        ("zipf 1.25", Skew::Zipf(1.25)),
        ("zipf 2.00", Skew::Zipf(2.0)),
    ] {
        let (t2, w2) = join_run(Transport::TwoSided, tuples, skew);
        let (t1, w1) = join_run(Transport::OneSided, tuples, skew);
        let verdict = if w1 < w2 { "one-sided" } else { "two-sided" };
        println!(
            "{label:>12} {t2:>13.4}s {:>12.2} {t1:>13.4}s {:>12.2}   {verdict}",
            w2 as f64 / 1e6,
            w1 as f64 / 1e6,
        );
    }
    println!(
        "\nShipping S costs the same regardless of its contents; fetching bucket\n\
         tables costs what the probe's *distinct-bucket footprint* costs. The\n\
         duplicate-heavy end is where the one-sided plane earns its keep.\n"
    );
}

// ----------------------------------------------- part 3: operation level

/// Wire tags for the RPC emulation.
const TAG_GET: u32 = 1;
const TAG_PUT: u32 = 2;

#[derive(Clone, Copy, PartialEq)]
enum Plane {
    OneSided,
    Rpc,
}

/// Virtual seconds for [`OPS_PER_CELL`] key-value operations of `value`
/// bytes, `read_pct` percent of them GETs, over the given dataplane.
fn kv_cell(plane: Plane, value: usize, read_pct: usize, mtu: usize) -> f64 {
    let sim = Simulation::new();
    let fabric = Fabric::new(FabricConfig::fdr(), NicCosts::default(), 2);
    fabric.launch(&sim);
    let elapsed = Arc::new(Mutex::new(0.0f64));

    // The server burns dispatch + copy CPU per RPC; on the one-sided
    // plane no request ever reaches it and it sleeps until shutdown.
    {
        let fabric = Arc::clone(&fabric);
        sim.spawn("server", move |ctx| {
            let nic = fabric.nic(HostId(1));
            while let Ok(Some(c)) = nic.recv(ctx) {
                match c.tag {
                    TAG_GET => {
                        ctx.advance(SimDuration::from_secs_f64(
                            RPC_DISPATCH_SECONDS + value as f64 / RPC_COPY_RATE,
                        ));
                        nic.post_send(ctx, c.src, TAG_GET, vec![0x5a; value]);
                    }
                    TAG_PUT => {
                        ctx.advance(SimDuration::from_secs_f64(
                            RPC_DISPATCH_SECONDS + c.payload.len() as f64 / RPC_COPY_RATE,
                        ));
                        nic.post_send(ctx, c.src, TAG_PUT, vec![0u8; 8]);
                    }
                    t => panic!("unexpected tag {t}"),
                }
                nic.repost_recv(ctx);
            }
        });
    }
    {
        let fabric = Arc::clone(&fabric);
        let elapsed = Arc::clone(&elapsed);
        sim.spawn("client", move |ctx| {
            let nic = fabric.nic(HostId(0));
            // The store region lives on host 1; the client holds the
            // published handle, exactly like a probe core holds a bucket
            // table's handle.
            let mr = fabric.nic(HostId(1)).mrs.register(ctx, value.max(64) * 2);
            mr.fill(0, &vec![0x5a; value.max(64)]);
            let remote = mr.publish();
            let t0 = ctx.now();
            for i in 0..OPS_PER_CELL {
                let is_read = i % 100 < read_pct;
                match (plane, is_read) {
                    (Plane::OneSided, true) => {
                        if value <= mtu {
                            // Inline fetch: the value fits one READ.
                            nic.post_read(ctx, remote, 0, value).wait(ctx).unwrap();
                        } else {
                            // Pointer chase: header READ, then the value.
                            nic.post_read(ctx, remote, 0, 16).wait(ctx).unwrap();
                            nic.post_read(ctx, remote, 0, value).wait(ctx).unwrap();
                        }
                    }
                    (Plane::OneSided, false) => {
                        // WRITE, then READ back the seqlock version word:
                        // the mutation does not count until the bump is
                        // observed.
                        nic.post_write(ctx, remote, 0, vec![0xa5; value])
                            .wait(ctx)
                            .unwrap();
                        nic.post_read(ctx, remote, 0, 4).wait(ctx).unwrap();
                    }
                    (Plane::Rpc, true) => {
                        nic.post_send(ctx, HostId(1), TAG_GET, vec![0u8; 16]);
                        let c = nic.recv(ctx).unwrap().expect("server reply");
                        assert_eq!(c.payload.len(), value);
                        nic.repost_recv(ctx);
                    }
                    (Plane::Rpc, false) => {
                        nic.post_send(ctx, HostId(1), TAG_PUT, vec![0xa5; value]);
                        nic.recv(ctx).unwrap().expect("server ack");
                        nic.repost_recv(ctx);
                    }
                }
            }
            *elapsed.lock().unwrap() = (ctx.now() - t0).as_secs_f64();
            mr.unpublish();
            fabric.shutdown(ctx);
        });
    }
    sim.run();
    let secs = *elapsed.lock().unwrap();
    secs
}

fn part3(args: &Args) {
    println!(
        "Part 3 — operation level: {OPS_PER_CELL} GET/PUT ops per cell, FDR \
         fabric, inline MTU {} B",
        args.mtu
    );
    println!(
        "{:>10} {:>8} {:>16} {:>12}   winner",
        "value B", "reads", "one-sided µs/op", "rpc µs/op"
    );
    let mut one_sided_wins = 0usize;
    let mut cells = 0usize;
    for &value in &args.sizes {
        for &ratio in &args.ratios {
            let read_pct = (ratio * 100.0).round() as usize;
            let one = kv_cell(Plane::OneSided, value, read_pct, args.mtu);
            let rpc = kv_cell(Plane::Rpc, value, read_pct, args.mtu);
            let us = 1e6 / OPS_PER_CELL as f64;
            let winner = if one < rpc { "one-sided" } else { "rpc" };
            if one < rpc {
                one_sided_wins += 1;
            }
            cells += 1;
            println!(
                "{value:>10} {read_pct:>7}% {:>16.3} {:>12.3}   {winner}",
                one * us,
                rpc * us
            );
        }
    }
    println!(
        "\none-sided wins {one_sided_wins}/{cells} cells: it dodges the server's \
         dispatch CPU on reads\nbut pays a second round trip per write (version \
         read-back) and per out-of-line\nvalue (pointer chase) — exactly the \
         selection guide's decision axes (DESIGN.md §11)."
    );
}

fn main() {
    let args = parse_args();
    part1(args.tuples);
    part2(args.tuples);
    part3(&args);
}
