//! Skew handling (the paper's §6.5): join a Zipf-skewed foreign-key
//! workload under both partition-assignment policies and see how the
//! dynamic sorted assignment plus intra-machine probe splitting contain
//! the damage.
//!
//! ```text
//! cargo run --release --example skew_handling
//! ```

use rsj::cluster::ClusterSpec;
use rsj::core::{run_distributed_join, AssignmentPolicy, DistJoinConfig};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn run(skew: Skew, policy: AssignmentPolicy) -> rsj::core::DistJoinOutcome {
    let machines = 4;
    let mut cfg = DistJoinConfig::new(ClusterSpec::qdr_cluster(machines));
    cfg.radix_bits = (8, 4);
    cfg.assignment = policy;
    let n_r = 500_000;
    let n_s = 8_000_000;
    let r = generate_inner::<Tuple16>(n_r, machines, 3);
    let (s, oracle) = generate_outer::<Tuple16>(n_s, n_r, machines, skew, 4);
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);
    out
}

fn main() {
    println!("500K ⋈ 8M tuples on 4 QDR machines\n");
    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>14}",
        "skew", "assignment", "total", "net pass", "local+probe"
    );
    for skew in [Skew::None, Skew::Zipf(1.05), Skew::Zipf(1.20)] {
        for (label, policy) in [
            ("round-robin", AssignmentPolicy::RoundRobin),
            ("sorted-dyn", AssignmentPolicy::SortedDynamic),
        ] {
            let out = run(skew, policy);
            let skew_label = match skew {
                Skew::None => "none".to_string(),
                Skew::Zipf(z) => format!("zipf {z}"),
            };
            println!(
                "{:>12} {:>14} {:>12} {:>12} {:>14}",
                skew_label,
                label,
                format!("{}", out.phases.total()),
                format!("{}", out.phases.network_partition),
                format!("{}", out.phases.local_partition + out.phases.build_probe),
            );
        }
    }
    // The paper's future work, implemented as flagged extensions: probe
    // stealing across machines plus a parallel local pass for oversized
    // partitions.
    let extended = {
        let machines = 4;
        let mut cfg = DistJoinConfig::new(ClusterSpec::qdr_cluster(machines));
        cfg.radix_bits = (8, 4);
        cfg.assignment = AssignmentPolicy::SortedDynamic;
        cfg.inter_machine_work_sharing = true;
        cfg.parallel_local_pass = true;
        let r = generate_inner::<Tuple16>(500_000, machines, 3);
        let (s, oracle) =
            generate_outer::<Tuple16>(8_000_000, 500_000, machines, Skew::Zipf(1.20), 4);
        let out = run_distributed_join(cfg, r, s);
        oracle.verify(&out.result);
        out
    };
    println!(
        "{:>12} {:>14} {:>12} (work sharing + parallel local pass)",
        "zipf 1.2",
        "extensions",
        format!("{}", extended.phases.total()),
    );
    println!();
    println!("Expected shape (paper Figure 8): execution time rises with the skew");
    println!("factor — the machine owning the heaviest partition dominates both the");
    println!("network pass and local processing. The dynamic assignment keeps the");
    println!("largest partitions on distinct machines; probe splitting shares the");
    println!("biggest fragments among that machine's threads. Cross-machine work");
    println!("sharing is future work in the paper; enabled via the flagged");
    println!("extensions, it cuts the heavy-skew total (last row).");
}
