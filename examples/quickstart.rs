//! Quickstart: run one distributed RDMA radix join on a simulated
//! 4-machine FDR cluster and print the verified result with its phase
//! breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rsj::cluster::ClusterSpec;
use rsj::core::{run_distributed_join, DistJoinConfig};
use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};

fn main() {
    // The paper's Figure 5a cluster: four machines on FDR InfiniBand,
    // eight cores each.
    let machines = 4;
    let mut cfg = DistJoinConfig::new(ClusterSpec::fdr_cluster(machines));
    // 2^10 network partitions (the paper's choice), 2^4 local fragments.
    cfg.radix_bits = (10, 4);

    // 4M ⋈ 16M tuples of 16 bytes — a 1:4 foreign-key workload, loaded
    // evenly across the cluster with range-partitioned rids.
    let n_r = 4_000_000;
    let n_s = 16_000_000;
    println!("generating {n_r} ⋈ {n_s} tuples over {machines} machines…");
    let r = generate_inner::<Tuple16>(n_r, machines, 1);
    let (s, oracle) = generate_outer::<Tuple16>(n_s, n_r, machines, Skew::None, 2);

    println!("running the distributed join (two-sided RDMA, interleaved)…");
    let out = run_distributed_join(cfg, r, s);
    oracle.verify(&out.result);

    println!(
        "\nresult: {} matches (verified against the generator oracle)",
        out.result.matches
    );
    println!("phase breakdown (virtual time on the simulated cluster):");
    for (name, d) in out.phases.rows() {
        println!("  {name:>18}  {d}");
    }
    println!("  {:>18}  {}", "total", out.phases.total());
    println!("\nper-machine traffic:");
    for (i, m) in out.machines.iter().enumerate() {
        println!(
            "  machine {i}: sent {:>9} bytes, received {:>9} bytes, \
             send stalls {:.3}s",
            m.tx_bytes, m.rx_bytes, m.send_stall_seconds
        );
    }
}
