//! # rsj — rack-scale in-memory join processing using (simulated) RDMA
//!
//! A from-scratch Rust reproduction of *Barthels, Loesing, Alonso,
//! Kossmann: "Rack-Scale In-Memory Join Processing using RDMA"*
//! (SIGMOD 2015). This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event kernel (virtual clock) |
//! | [`rdma`] | simulated verbs: memory regions, buffer pools, one/two-sided ops, the QDR/FDR fabric model |
//! | [`cluster`] | Table 2 hardware presets, calibrated cost model, phase accounting |
//! | [`workload`] | tuple layouts, relation generators, Zipf skew, result oracles |
//! | [`joins`] | radix kernels, chained hash tables, the single-machine baseline |
//! | [`core`] | **the paper's contribution**: the distributed RDMA radix hash join |
//! | [`model`] | the analytical model of Section 5 |
//! | [`operators`] | §7 generalizations: sort-merge join, aggregation, cyclo-join |
//!
//! ## Quickstart
//!
//! ```
//! use rsj::cluster::ClusterSpec;
//! use rsj::core::{run_distributed_join, DistJoinConfig};
//! use rsj::workload::{generate_inner, generate_outer, Skew, Tuple16};
//!
//! // A 4-machine FDR cluster, 8 cores each — the paper's Figure 5a setup.
//! let mut cfg = DistJoinConfig::new(ClusterSpec::fdr_cluster(4));
//! cfg.radix_bits = (6, 6);
//!
//! // 64K ⋈ 256K tuples (scaled down from the paper's billions; see
//! // examples/quickstart.rs for a larger run).
//! let r = generate_inner::<Tuple16>(1 << 16, 4, 1);
//! let (s, oracle) = generate_outer::<Tuple16>(1 << 18, 1 << 16, 4, Skew::None, 2);
//!
//! let out = run_distributed_join(cfg, r, s);
//! oracle.verify(&out.result);
//! println!("total {} | phases {:?}", out.phases.total(), out.phases.rows());
//! ```

pub use rsj_cluster as cluster;
pub use rsj_core as core;
pub use rsj_joins as joins;
pub use rsj_model as model;
pub use rsj_operators as operators;
pub use rsj_rdma as rdma;
pub use rsj_sim as sim;
pub use rsj_workload as workload;
